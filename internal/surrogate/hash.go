package surrogate

// splitmix is a stateless splitmix64 hash step, the package's source of
// deterministic pseudo-randomness: forced-schedule derate patterns and
// validate-mode spot-check selection derive from it, so both are
// worker-count and iteration-order independent.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash01 maps a hash chain over the given words into [0, 1).
func hash01(words ...uint64) float64 {
	h := uint64(0x737572726f67617f) // package tag
	for _, w := range words {
		h = splitmix(h ^ w)
	}
	return float64(h>>11) / float64(1<<53)
}
