// Package surrogate implements a learned simulator surrogate for the
// soak-dominated experiment paths: an analytical interval baseline spliced
// from recorded fixed-mode telemetry (issue-width floor, mode-switch
// microcode cost, DRAM-derate miss-latency bound) plus an ML residual
// trained on exact-simulator intervals via internal/ml (regression forest
// and ridge backends). Deployments replay through core.ReplayDeploy at
// interval granularity instead of executing instructions, which makes the
// screening inner loops one to two orders of magnitude faster.
//
// The package exposes the three simulation modes behind core.SimOracle:
// exact (delegation to the cycle model, byte-identical), surrogate (the
// fast path), and validate (the fast path plus seeded exact spot checks
// that enforce a p95 relative-IPC error budget and fail the run loudly
// when it is exceeded). See docs/SURROGATE.md for the design, the feature
// schema, and the error-budget contract.
package surrogate

import (
	"fmt"

	"clustergate/internal/dataset"
	"clustergate/internal/obs"
)

// FeatureVersion identifies the surrogate feature schema. It participates
// in the model fingerprint, so a model trained under an older schema can
// never silently score new-schema features.
const FeatureVersion = 1

// Surrogate observability: replayed deployments, exact-simulator
// fallbacks/spot checks, and the validate-mode relative-IPC error
// distribution (observed in nanoseconds-as-error units: 1e9 ns ≡ 100%
// relative error, so the manifest's p95_ms reads as permille error).
var (
	surrogateHits     = obs.NewCounter("surrogate.hit")
	surrogateFallback = obs.NewCounter("surrogate.fallback")
	surrogateErr      = obs.NewHistogram("surrogate.err")
)

// Fingerprint identifies the simulator configuration a model was trained
// for: the core parameters, the interval geometry, and the feature schema
// version. Worker counts are excluded — they never change simulation
// results. Oracles fall back to the exact simulator on any mismatch.
func Fingerprint(cfg dataset.Config) string {
	return fmt.Sprintf("fv%d|interval=%d|warmup=%d|core=%+v",
		FeatureVersion, cfg.Interval, cfg.Warmup, cfg.Core)
}
