package surrogate

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"clustergate/internal/core"
	"clustergate/internal/dataset"
	"clustergate/internal/power"
	"clustergate/internal/trace"
)

// OracleOptions configures the surrogate/validate oracle. The zero value
// selects the documented defaults.
type OracleOptions struct {
	// SampleRate is the validate-mode exact spot-check fraction, decided
	// per trace by a stateless hash of the trace seed so the sample is
	// identical at any worker count. Zero selects 0.25.
	SampleRate float64
	// Budget is the p95 relative adaptive-IPC error bound Check enforces
	// in validate mode. Zero selects 0.05 (5%).
	Budget float64
	// Seed perturbs the spot-check hash so different runs can check
	// different traces.
	Seed int64
}

func (o *OracleOptions) defaults() {
	if o.SampleRate == 0 {
		o.SampleRate = 0.25
	}
	if o.Budget == 0 {
		o.Budget = 0.05
	}
}

// Oracle implements core.SimOracle over a trained surrogate Model. In
// surrogate mode deployments replay on the fast path; in validate mode a
// seeded fraction additionally re-runs on the exact simulator and the
// relative adaptive-IPC error feeds the surrogate.err histogram and the
// Check bound; in exact mode (and on any configuration-fingerprint
// mismatch) it falls back to the exact simulator, counting
// surrogate.fallback. SimulateCorpus is always exact: recordings are the
// surrogate's own input.
type Oracle struct {
	model *Model
	mode  core.SimMode
	opts  OracleOptions

	mu   sync.Mutex
	errs []float64
}

// NewOracle wraps a trained model in the given simulation mode.
func NewOracle(m *Model, mode core.SimMode, opts OracleOptions) *Oracle {
	opts.defaults()
	return &Oracle{model: m, mode: mode, opts: opts}
}

// Mode returns the oracle's simulation mode.
func (o *Oracle) Mode() core.SimMode { return o.mode }

// Model returns the trained surrogate model.
func (o *Oracle) Model() *Model { return o.model }

// Deploy routes one closed-loop deployment: fast-path replay in
// surrogate/validate mode (with seeded exact spot checks in validate),
// exact simulation in exact mode or when the model does not match the
// requested configuration.
func (o *Oracle) Deploy(g *core.GatingController, tr *trace.Trace, ref *dataset.TraceTelemetry,
	cfg dataset.Config, pm *power.Model, opts core.DeployOptions) (*core.GuardedDeploymentResult, error) {
	if o.mode == core.SimExact || o.model == nil || o.model.Fingerprint != Fingerprint(cfg) {
		surrogateFallback.Inc()
		return core.DeployWithOptions(g, tr, ref, cfg, pm, opts)
	}
	rep, err := o.model.Replay(g, tr, ref, cfg, pm, opts)
	if err != nil {
		return nil, err
	}
	surrogateHits.Inc()
	if o.mode == core.SimValidate && hash01(uint64(o.opts.Seed), uint64(tr.Seed), 0x5370) < o.opts.SampleRate {
		exact, err := core.DeployWithOptions(g, tr, ref, cfg, pm, opts)
		if err != nil {
			return nil, err
		}
		e := relIPCError(rep, exact)
		o.mu.Lock()
		o.errs = append(o.errs, e)
		o.mu.Unlock()
		// 1e9 ns ≡ 100% relative error, so manifest p95_ms reads as
		// permille error — which lets obsdiff gate error drift with the
		// same histogram machinery it gates timing with.
		surrogateErr.Observe(time.Duration(e * 1e9))
	}
	return rep, nil
}

// SimulateCorpus always records on the exact simulator (memoised when
// cacheDir is set); in non-exact modes the call counts as a fallback so
// manifests show how much exact work the surrogate still depends on.
func (o *Oracle) SimulateCorpus(c *trace.Corpus, cfg dataset.Config, cacheDir string) ([]*dataset.TraceTelemetry, error) {
	if o.mode != core.SimExact {
		surrogateFallback.Inc()
	}
	return dataset.SimulateCorpusCached(c, cfg, cacheDir)
}

// relIPCError is the relative adaptive-IPC disagreement between a
// surrogate replay and its exact re-run.
func relIPCError(sur, exact *core.GuardedDeploymentResult) float64 {
	ei := exact.Adaptive.IPC()
	if ei == 0 {
		return 0
	}
	return math.Abs(sur.Adaptive.IPC()/ei - 1)
}

// ErrorReport summarises validate-mode spot-check errors. Samples is the
// number of exact re-runs; percentiles are over the relative adaptive-IPC
// error, sorted, so the report is identical at any worker count.
type ErrorReport struct {
	Samples      int
	P50, P95Err  float64
	Max          float64
	Budget       float64
	WithinBudget bool
}

// Report returns the current spot-check error summary.
func (o *Oracle) Report() ErrorReport {
	o.mu.Lock()
	errs := append([]float64(nil), o.errs...)
	o.mu.Unlock()
	sort.Float64s(errs)
	r := ErrorReport{Samples: len(errs), Budget: o.opts.Budget}
	if len(errs) > 0 {
		r.P50 = percentile(errs, 0.50)
		r.P95Err = percentile(errs, 0.95)
		r.Max = errs[len(errs)-1]
	}
	r.WithinBudget = r.P95Err <= r.Budget
	return r
}

// Check enforces the validate-mode error budget: it returns an error when
// spot checks ran and their p95 relative adaptive-IPC error exceeds the
// budget. Callers run it once at end of run and must fail the run on a
// non-nil return — that is the "failing loudly" half of the contract.
func (o *Oracle) Check() error {
	r := o.Report()
	if r.Samples > 0 && !r.WithinBudget {
		return fmt.Errorf("surrogate: validate error budget exceeded: p95 relative IPC error %.4f > %.4f over %d spot checks",
			r.P95Err, r.Budget, r.Samples)
	}
	return nil
}
