package surrogate

import (
	"fmt"
	"math"
	"sort"

	"clustergate/internal/core"
	"clustergate/internal/dataset"
	"clustergate/internal/ml"
	"clustergate/internal/ml/forest"
	"clustergate/internal/ml/linear"
	"clustergate/internal/obs"
	"clustergate/internal/parallel"
	"clustergate/internal/telemetry"
	"clustergate/internal/trace"
	"clustergate/internal/uarch"
)

// TrainOptions controls surrogate training. The zero value selects the
// documented defaults.
type TrainOptions struct {
	// Workers fans the per-trace forced-schedule runs out (0 = all cores).
	Workers int
	// MaxTraces caps how many corpus traces generate training intervals
	// (selected evenly across the corpus). Zero selects 48.
	MaxTraces int
	// Seed drives the forced derate pattern and the forest's bootstrap
	// sampling.
	Seed int64
	// SwitchPeriod is the interval count between forced mode toggles in
	// the training schedule; small values concentrate samples on switch
	// transients. Zero selects 5.
	SwitchPeriod int
	// Forest overrides the regression-forest configuration; the zero
	// value selects 24 trees of depth 6.
	Forest forest.RegConfig
	// Lambda is the ridge penalty. Zero selects the linear package default.
	Lambda float64
}

func (o *TrainOptions) defaults() {
	if o.MaxTraces == 0 {
		o.MaxTraces = 80
	}
	if o.SwitchPeriod == 0 {
		o.SwitchPeriod = 5
	}
	if o.Forest.NumTrees == 0 {
		o.Forest.NumTrees = 32
	}
	if o.Forest.MaxDepth == 0 {
		o.Forest.MaxDepth = 7
	}
	if o.Forest.Seed == 0 {
		o.Forest.Seed = o.Seed ^ 0x72657369 // "resi"
	}
}

// sample is one training interval: residual features and the observed
// relative cycle error of the analytic splice.
type sample struct {
	f []float64
	y float64
}

// Train fits a surrogate to a corpus whose fixed-mode recordings tel have
// already been simulated (the memoised soak cache supplies them for
// free). For an even subset of traces it runs one extra exact simulation
// under a forced schedule — mode toggles every SwitchPeriod intervals and
// a deterministic DRAM-derate pattern — so the residual sees exactly the
// regimes the splice gets wrong: switch transients and derated intervals.
// Forest and ridge backends are fitted on even-indexed traces, scored on
// odd-indexed holdout traces, and the lower-MAE backend wins.
//
// Training is deterministic for a fixed (corpus, cfg, options) at any
// worker count.
func Train(c *trace.Corpus, tel []*dataset.TraceTelemetry, cfg dataset.Config, opt TrainOptions) (*Model, error) {
	defer obs.Start("surrogate.train").End()
	if len(c.Traces) != len(tel) {
		return nil, fmt.Errorf("surrogate: %d traces but %d telemetry records", len(c.Traces), len(tel))
	}
	if len(c.Traces) == 0 {
		return nil, fmt.Errorf("surrogate: empty corpus")
	}
	opt.defaults()

	// Even selection of up to MaxTraces traces across the corpus.
	sel := make([]int, 0, opt.MaxTraces)
	stride := float64(len(c.Traces)) / float64(opt.MaxTraces)
	if stride < 1 {
		stride = 1
	}
	for p := 0.0; int(p) < len(c.Traces) && len(sel) < opt.MaxTraces; p += stride {
		sel = append(sel, int(p))
	}

	perTrace, err := parallel.Map(opt.Workers, len(sel), func(i int) ([]sample, error) {
		ti := sel[i]
		return traceSamples(c.Traces[ti], tel[ti], cfg, opt)
	})
	if err != nil {
		return nil, err
	}

	train, holdout := &ml.RegDataset{}, &ml.RegDataset{}
	for i, ss := range perTrace {
		dst := train
		if i%2 == 1 {
			dst = holdout
		}
		for _, s := range ss {
			dst.X = append(dst.X, s.f)
			dst.Y = append(dst.Y, s.y)
		}
	}
	if holdout.Len() == 0 {
		holdout = train // single-trace corpora: score in-sample
	}
	total := train.Len() + holdout.Len()
	if holdout == train {
		total = train.Len()
	}
	if train.Len() < 2*len(FeatureNames) {
		return nil, fmt.Errorf("surrogate: only %d training samples for %d features", train.Len(), len(FeatureNames))
	}

	m := &Model{
		FeatureVersion: FeatureVersion,
		Fingerprint:    Fingerprint(cfg),
		Samples:        total,
	}
	rf, err := forest.TrainReg(opt.Forest, train)
	if err != nil {
		return nil, fmt.Errorf("surrogate: forest backend: %w", err)
	}
	m.Backend, m.Forest = "forest", rf
	m.HoldoutMAE = ml.MAE(rf, holdout)
	// The ridge fit can fail on degenerate (constant-feature) corpora;
	// the forest always stands, so that is a skip, not an error.
	if ridge, err := linear.TrainRidge(linear.RidgeConfig{Lambda: opt.Lambda}, train); err == nil {
		if mae := ml.MAE(ridge, holdout); mae < m.HoldoutMAE {
			m.Backend, m.Forest, m.Ridge = "ridge", nil, ridge
			m.HoldoutMAE = mae
		}
	}
	m.HoldoutP95 = holdoutP95(m, holdout)
	return m, nil
}

// holdoutP95 is the 95th percentile of the chosen backend's absolute
// residual error on the holdout set.
func holdoutP95(m *Model, d *ml.RegDataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	errs := make([]float64, d.Len())
	for i, x := range d.X {
		errs[i] = math.Abs(m.Residual(x) - d.Y[i])
	}
	sort.Float64s(errs)
	return percentile(errs, 0.95)
}

// percentile reads the q-quantile from an ascending-sorted slice.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// traceSamples runs one forced-schedule exact simulation of a trace and
// pairs every interval's observed base vector against the analytic splice
// of the pre-recorded steady-state telemetry, yielding one residual
// sample per interval.
func traceSamples(tr *trace.Trace, ref *dataset.TraceTelemetry, cfg dataset.Config, opt TrainOptions) ([]sample, error) {
	nInt := ref.Intervals()
	if nInt == 0 {
		return nil, nil
	}
	cpu := uarch.NewCoreInMode(cfg.Core, uarch.ModeHighPerf)
	s := trace.NewStream(tr)
	buf := make([]trace.Instruction, cfg.Interval)

	// Warmup without recording, as during dataset generation.
	for done := 0; done < cfg.Warmup; {
		n := cfg.Warmup - done
		if n > len(buf) {
			n = len(buf)
		}
		k := s.Read(buf[:n])
		if k == 0 {
			break
		}
		cpu.Execute(buf[:k])
		done += k
	}

	mode := uarch.ModeHighPerf
	sinceSwitch := core.SteadySinceSwitch
	prev := cpu.Events()
	out := make([]sample, 0, nInt)
	for gidx := 0; gidx < nInt; gidx++ {
		if gidx > 0 && gidx%opt.SwitchPeriod == 0 {
			if mode == uarch.ModeHighPerf {
				mode = uarch.ModeLowPower
			} else {
				mode = uarch.ModeHighPerf
			}
			cpu.SetMode(mode)
			sinceSwitch = 0
		}
		derate := forcedDerate(opt.Seed, tr.Seed, gidx)
		cpu.SetMemDerate(derate)

		k := s.Read(buf)
		if k == 0 || k < cfg.Interval {
			break // recordings only hold full intervals
		}
		cpu.Execute(buf[:k])
		cur := cpu.Events()
		delta := cur.Sub(prev)
		prev = cur
		trueBase := telemetry.ExtractBase(delta)

		recs, other := ref.HighPerf, ref.LowPower
		if mode == uarch.ModeLowPower {
			recs, other = ref.LowPower, ref.HighPerf
		}
		spliced := Splice(recs[gidx].Base, mode, derate, sinceSwitch, cfg.Core)
		y := trueBase[idxCycles]/spliced[idxCycles] - 1
		if y > 1 {
			y = 1
		} else if y < -1 {
			y = -1
		}
		out = append(out, sample{
			f: featuresFor(recs[gidx], other[gidx], mode, derate, sinceSwitch),
			y: y,
		})
		if sinceSwitch < core.SteadySinceSwitch {
			sinceSwitch++
		}
	}
	return out, nil
}

// forcedDerate is the training schedule's deterministic DRAM-derate
// pattern: most intervals run nominal, ~12% run derated at one of the
// fault plans' typical factors, so the residual sees the derate response
// without depending on any particular fault plan.
func forcedDerate(seed, traceSeed int64, gidx int) float64 {
	if hash01(uint64(seed), uint64(traceSeed), uint64(gidx)) >= 0.12 {
		return 1
	}
	switch int(hash01(uint64(seed), uint64(traceSeed), uint64(gidx), 1) * 3) {
	case 0:
		return 2
	case 1:
		return 4
	default:
		return 6
	}
}
