package surrogate

import (
	"fmt"

	"clustergate/internal/core"
	"clustergate/internal/dataset"
	"clustergate/internal/ml/forest"
	"clustergate/internal/ml/linear"
	"clustergate/internal/power"
	"clustergate/internal/trace"
	"clustergate/internal/uarch"
)

// maxResidual clamps the learned cycle correction to ±40%: a residual
// model can refine the analytic estimate but never overturn it, which
// bounds the damage of a mistrained model to something validate mode's
// spot checks will catch rather than a wild excursion.
const maxResidual = 0.4

// Model is a trained simulator surrogate: the analytic splice layer plus
// a regression residual over the Features schema predicting the relative
// cycle error of the spliced estimate (true/spliced − 1). Exactly one of
// Forest/Ridge is set, recorded in Backend; both are evaluated on the
// holdout at training time and the lower-MAE backend wins.
type Model struct {
	FeatureVersion int
	Backend        string // "forest" or "ridge"
	Forest         *forest.RegForest
	Ridge          *linear.Ridge
	// Fingerprint names the simulator configuration the model was trained
	// for; oracles fall back to exact simulation on mismatch.
	Fingerprint string
	// Samples, HoldoutMAE, and HoldoutP95 summarise training: total
	// interval samples, and the chosen backend's mean / 95th-percentile
	// absolute residual error on held-out traces.
	Samples    int
	HoldoutMAE float64
	HoldoutP95 float64
}

// Residual returns the clamped relative-cycle correction for a feature
// vector; a nil or backend-less model returns 0 (pure analytic splice).
func (m *Model) Residual(f []float64) float64 {
	if m == nil {
		return 0
	}
	var r float64
	switch {
	case m.Forest != nil:
		r = m.Forest.Predict(f)
	case m.Ridge != nil:
		r = m.Ridge.Predict(f)
	default:
		return 0
	}
	if r > maxResidual {
		return maxResidual
	}
	if r < -maxResidual {
		return -maxResidual
	}
	return r
}

// Replay runs one closed-loop deployment on the surrogate fast path,
// regardless of oracle mode: spliced recorded intervals corrected by the
// model's residual, driven through core.ReplayDeploy. The caller is
// responsible for fingerprint checks (Oracle.Deploy does both).
func (m *Model) Replay(g *core.GatingController, tr *trace.Trace, ref *dataset.TraceTelemetry,
	cfg dataset.Config, pm *power.Model, opts core.DeployOptions) (*core.GuardedDeploymentResult, error) {
	if m != nil && m.FeatureVersion != FeatureVersion {
		return nil, fmt.Errorf("surrogate: model feature schema v%d, package is v%d", m.FeatureVersion, FeatureVersion)
	}
	tm := &traceModel{m: m, ref: ref, core: cfg.Core}
	return core.ReplayDeploy(g, tr, ref, cfg, pm, opts, tm)
}

// traceModel adapts one trace's recorded fixed-mode telemetry plus the
// trained residual to core.IntervalModel.
type traceModel struct {
	m    *Model
	ref  *dataset.TraceTelemetry
	core uarch.Config
}

// IntervalBase returns the surrogate's estimate of the exact simulator's
// interval delta: the recorded steady-state vector for the mode, spliced
// analytically, then cycle-corrected by the residual model.
func (t *traceModel) IntervalBase(gidx int, mode uarch.Mode, derate float64, sinceSwitch int) []float64 {
	recs, other := t.ref.HighPerf, t.ref.LowPower
	if mode == uarch.ModeLowPower {
		recs, other = t.ref.LowPower, t.ref.HighPerf
	}
	rec := recs[gidx]
	base := Splice(rec.Base, mode, derate, sinceSwitch, t.core)
	if r := t.m.Residual(featuresFor(rec, other[gidx], mode, derate, sinceSwitch)); r != 0 {
		base[idxCycles] = applyCycleBounds(base, mode, base[idxCycles]*(1+r), t.core)
		base[idxStall] = stallFor(base)
	}
	return base
}

// featuresFor extracts the residual features for one replayed interval
// from the two fixed-mode recordings and the replay context.
func featuresFor(rec, other dataset.IntervalRecord, mode uarch.Mode, derate float64, sinceSwitch int) []float64 {
	ratio := 1.0
	if rec.IPC > 0 {
		ratio = other.IPC / rec.IPC
	}
	return Features(rec.Base, mode == uarch.ModeLowPower, sinceSwitch, ratio, derate)
}
