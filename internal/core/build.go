package core

import (
	"fmt"

	"clustergate/internal/dataset"
	"clustergate/internal/mcu"
	"clustergate/internal/metrics"
	"clustergate/internal/ml"
	"clustergate/internal/telemetry"
	"clustergate/internal/uarch"
)

// BuildInputs carries everything needed to train and deploy a controller:
// recorded training telemetry, the counter space and selected columns, the
// SLA, and the microcontroller budget.
type BuildInputs struct {
	Tel      []*dataset.TraceTelemetry
	Counters *telemetry.CounterSet
	Columns  []int
	SLA      dataset.SLA
	Interval int
	Spec     mcu.Spec
	Seed     int64

	// TuneFrac is the application-level tuning fraction; the remainder
	// calibrates thresholds. Zero selects 0.8.
	TuneFrac float64
	// MaxRSV is the calibration target (paper: violations below 1.0% on
	// the tuning data). Zero selects 0.01.
	MaxRSV float64
	// NoCalibration fixes both thresholds at 0.5 (the CHARSTAR baseline's
	// behaviour and the ablation of Section 6.3's sensitivity tuning).
	NoCalibration bool
	// GranularityOverride forces a prediction interval; zero selects the
	// finest the budget supports for the model's cost.
	GranularityOverride int
	// GroupByBenchmark partitions tuning/calibration splits at benchmark
	// rather than workload level (for suites where one program has many
	// input workloads).
	GroupByBenchmark bool
	// SkipBudgetCheck builds hypothetical controllers whose inference cost
	// exceeds the microcontroller budget (e.g. granularity sweeps assuming
	// dedicated inference hardware).
	SkipBudgetCheck bool
	// Guardrail sizes the controller for guarded deployment: the watchdog
	// monitor's firmware cost (mcu.WatchdogCost over GuardrailSignals
	// signals, one pass per telemetry interval) is reserved out of the op
	// budget before the granularity is chosen, so model inference and the
	// guardrail fit the microcontroller together. A model that fits 40k
	// bare may need 50k guarded.
	Guardrail bool
}

func (in *BuildInputs) defaults() {
	if in.TuneFrac == 0 {
		in.TuneFrac = 0.8
	}
	if in.MaxRSV == 0 {
		in.MaxRSV = 0.01
	}
	if in.Interval == 0 {
		in.Interval = 10_000
	}
}

// TrainFunc trains one mode's model on a tuning set and returns a scorer.
type TrainFunc func(tune *ml.Dataset, seed int64) (interface{ Score([]float64) float64 }, error)

// BuildController trains per-mode models with the given trainer, wraps
// them in metered firmware, calibrates sensitivities on held-out
// applications, and sizes the prediction granularity to the budget.
//
// Training happens at the deployment granularity: a probe model trained on
// a data subsample establishes the firmware cost, the budget fixes the
// finest supported granularity, and the real models are then trained on
// telemetry aggregated to that granularity — the paper's "sum over
// successive intervals and re-normalize" procedure.
func BuildController(name string, train TrainFunc, in BuildInputs) (*GatingController, error) {
	in.defaults()
	g := &GatingController{
		Name:     name,
		Interval: in.Interval,
		Counters: in.Counters,
		Columns:  in.Columns,
		SLA:      in.SLA,
	}

	var watchdog mcu.Cost
	if in.Guardrail {
		watchdog = mcu.WatchdogCost(GuardrailSignals)
	}

	// Cost probe: model cost depends on topology, not data, so a small
	// subsample suffices to size the granularity.
	if in.GranularityOverride > 0 {
		g.Granularity = in.GranularityOverride
	} else {
		probeData := dataset.Build(probeSubset(in.Tel), in.Counters, dataset.BuildOptions{
			Mode: uarch.ModeHighPerf, SLA: in.SLA, Columns: in.Columns,
		})
		probe, err := train(probeData, in.Seed)
		if err != nil {
			return nil, fmt.Errorf("core: probing %s: %w", name, err)
		}
		fw, err := mcu.NewFirmware(name+"-probe", probe, len(probeData.X[0]))
		if err != nil {
			return nil, err
		}
		g.Granularity = in.Spec.FinestGranularityGuarded(fw.Cost.Ops, in.Interval, watchdog)
		if g.Granularity == 0 {
			return nil, fmt.Errorf("core: %s: watchdog reserve %d ops exhausts the per-interval budget", name, watchdog.Ops)
		}
	}
	k := g.Granularity / in.Interval
	g.WatchdogOps = watchdog.Ops * k

	maxOps := 0
	for _, mode := range []uarch.Mode{uarch.ModeHighPerf, uarch.ModeLowPower} {
		lts := dataset.BuildLabeled(in.Tel, in.Counters, dataset.BuildOptions{
			Mode: mode, SLA: in.SLA, Columns: in.Columns, WindowIntervals: k,
		})
		if in.GroupByBenchmark {
			for _, lt := range lts {
				if lt.Benchmark != "" {
					lt.App = lt.Benchmark
				}
			}
		}
		full := dataset.Flatten(lts, false)
		tune, _ := full.SplitByApp(in.TuneFrac, in.Seed)
		calTraces := heldOutTraces(lts, tune)

		model, err := train(tune, in.Seed+int64(mode))
		if err != nil {
			return nil, fmt.Errorf("core: training %s (%s): %w", name, mode, err)
		}
		nInputs := len(tune.X[0])
		fw, err := mcu.NewFirmware(fmt.Sprintf("%s-%s", name, mode), model, nInputs)
		if err != nil {
			return nil, err
		}
		if fw.Cost.Ops > maxOps {
			maxOps = fw.Cost.Ops
		}

		thr := 0.5
		if !in.NoCalibration {
			thr = CalibrateThresholdRSV(fw, calTraces, g.Window(), in.MaxRSV)
		}
		if mode == uarch.ModeLowPower {
			g.LowPower = PointPredictor{M: fw}
			g.ThresholdLow = thr
		} else {
			g.HighPerf = PointPredictor{M: fw}
			g.ThresholdHigh = thr
		}
	}

	g.OpsPerPrediction = maxOps
	if in.SkipBudgetCheck {
		return g, nil
	}
	return g, g.Validate(in.Spec)
}

// probeSubset returns a few traces' telemetry, enough to train a cost
// probe.
func probeSubset(tel []*dataset.TraceTelemetry) []*dataset.TraceTelemetry {
	n := 8
	if len(tel) < n {
		n = len(tel)
	}
	return tel[:n]
}

// heldOutTraces returns the labelled traces whose applications are absent
// from the tuning set. The paper calibrates sensitivity on tuning data;
// its models, trained on hundreds of noisy real applications, do not fit
// their tuning set closely. Ours can (a bagged forest nearly memorises
// in-bag data), which would make tuning-set violation rates vacuously zero
// and the calibration inert — held-out applications restore the signal the
// paper's procedure actually relies on.
func heldOutTraces(lts []*dataset.LabeledTrace, tune *ml.Dataset) []*dataset.LabeledTrace {
	inTune := map[string]bool{}
	for _, a := range tune.App {
		inTune[a] = true
	}
	var out []*dataset.LabeledTrace
	for _, lt := range lts {
		if !inTune[lt.App] {
			out = append(out, lt)
		}
	}
	return out
}

// CalibrateThresholdRSV finds the smallest decision threshold whose rate
// of SLA violations over the calibration traces stays at or below maxRSV —
// Section 6.3's sensitivity adjustment performed against the actual
// violation metric. Falls back to the most conservative grid point when no
// threshold reaches the target.
func CalibrateThresholdRSV(m interface{ Score([]float64) float64 },
	lts []*dataset.LabeledTrace, win metrics.SLAWindow, maxRSV float64) float64 {
	if len(lts) == 0 {
		return 0.5
	}
	// Score every sample once.
	scores := make([][]float64, len(lts))
	for i, lt := range lts {
		scores[i] = make([]float64, len(lt.X))
		for j, x := range lt.X {
			scores[i][j] = m.Score(x)
		}
	}
	// The grid starts at 0.5: calibration only ever makes a model more
	// conservative than its raw decision rule, guarding against an easy
	// calibration set licensing an aggressive threshold.
	best := 0.99
	for thr := 0.5; thr <= 0.991; thr += 0.01 {
		windows, violations := 0, 0
		for i, lt := range lts {
			w := win.W
			if w < 1 {
				w = 1
			}
			// Partial tail windows are skipped: at these scaled window
			// sizes a one-prediction fragment is pure noise.
			for start := 0; start+w <= len(lt.Y); start += w {
				fp := 0
				for t := start; t < start+w; t++ {
					if scores[i][t] >= thr && lt.Y[t] == 0 {
						fp++
					}
				}
				windows++
				if float64(fp)/float64(w) > 0.5 {
					violations++
				}
			}
		}
		if windows == 0 {
			return 0.5
		}
		if float64(violations)/float64(windows) <= maxRSV {
			return thr
		}
	}
	return best
}
