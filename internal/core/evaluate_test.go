package core

import (
	"testing"

	"clustergate/internal/metrics"
)

func TestBenchResultWindowAccounting(t *testing.T) {
	win := metrics.SLAWindow{W: 4}
	var b BenchResult

	// Trace 1: 8 predictions, second window systematically wrong.
	r1 := &DeploymentResult{
		Pred:  []int{1, 0, 1, 0, 1, 1, 1, 1},
		Truth: []int{1, 0, 1, 0, 0, 0, 0, 1},
	}
	b.fold(r1, win)
	if b.windows != 2 || b.violations != 1 {
		t.Fatalf("windows/violations = %d/%d, want 2/1", b.windows, b.violations)
	}

	// Trace 2: 6 predictions → one full window plus a discarded partial.
	r2 := &DeploymentResult{
		Pred:  []int{0, 0, 0, 0, 1, 1},
		Truth: []int{0, 0, 0, 0, 0, 0},
	}
	b.fold(r2, win)
	if b.windows != 3 {
		t.Fatalf("partial tail window counted: windows = %d, want 3", b.windows)
	}

	// Trace 3: shorter than one window still contributes one window.
	r3 := &DeploymentResult{Pred: []int{1, 1}, Truth: []int{0, 0}}
	b.fold(r3, win)
	if b.windows != 4 || b.violations != 2 {
		t.Fatalf("short trace accounting: windows/violations = %d/%d, want 4/2", b.windows, b.violations)
	}

	b.finish()
	if b.RSV != 0.5 {
		t.Errorf("RSV = %v, want 0.5", b.RSV)
	}
}

func TestBenchResultEnergyWeighting(t *testing.T) {
	win := metrics.SLAWindow{W: 1}
	var b BenchResult
	r := &DeploymentResult{}
	r.Adaptive.Energy, r.Adaptive.Cycles, r.Adaptive.Instrs = 65, 100, 200
	r.Reference.Energy, r.Reference.Cycles, r.Reference.Instrs = 100, 100, 200
	b.fold(r, win)
	b.finish()
	// Same IPC, 35% less energy → PPW gain = 1/0.65 - 1 ≈ 53.8%.
	if b.PPWGain < 0.53 || b.PPWGain > 0.55 {
		t.Errorf("PPW gain = %v, want ≈0.538", b.PPWGain)
	}
	if b.RelPerf != 1 {
		t.Errorf("relative performance = %v, want 1", b.RelPerf)
	}
}

func TestControllerWindowClamped(t *testing.T) {
	g := &GatingController{Interval: 10_000, Granularity: 320_000}
	if w := g.Window(); w.W != 1 {
		t.Errorf("window for coarse granularity = %d, want clamp to 1", w.W)
	}
}
