package core

import (
	"testing"

	"clustergate/internal/telemetry"
	"clustergate/internal/uarch"
)

// degradedBase builds a base vector that looks like saturated gated
// execution: nearly all cycles busy with heavy ready-µop queueing.
func degradedBase() []float64 {
	return telemetry.ExtractBase(uarch.Events{
		Cycles: 3000, BusyCycles: 2950, Instrs: 10_000,
		ReadyWaitCycles: 15_000,
	})
}

// healthyBase looks like comfortable gated execution.
func healthyBase() []float64 {
	return telemetry.ExtractBase(uarch.Events{
		Cycles: 6000, BusyCycles: 4000, Instrs: 10_000,
		ReadyWaitCycles: 1_000,
	})
}

func TestGuardrailTripsOnSustainedSaturation(t *testing.T) {
	gr := DefaultGuardrail()
	s := guardrailState{cfg: gr}
	s.observe(degradedBase())
	if s.backoff != 0 {
		t.Fatal("guardrail tripped after a single degraded interval")
	}
	s.observe(degradedBase())
	if s.backoff != gr.BackoffIntervals {
		t.Fatalf("backoff = %d after %d degraded intervals, want %d",
			s.backoff, gr.TripIntervals, gr.BackoffIntervals)
	}
	if s.trips != 1 {
		t.Fatalf("trips = %d, want 1", s.trips)
	}
	// Backoff drains one interval at a time.
	for i := 0; i < gr.BackoffIntervals; i++ {
		if !s.tick() {
			t.Fatalf("tick %d: gating allowed during backoff", i)
		}
	}
	if s.tick() {
		t.Fatal("gating still forbidden after backoff expiry")
	}
}

func TestGuardrailResetsOnHealthyInterval(t *testing.T) {
	s := guardrailState{cfg: DefaultGuardrail()}
	s.observe(degradedBase())
	s.observe(healthyBase())
	s.observe(degradedBase())
	if s.trips != 0 {
		t.Fatal("non-consecutive degradation tripped the guardrail")
	}
}

// TestGuardrailTripsWithinSLAWindow proves the watchdog's reaction
// latency: a sustained misprediction streak (saturated gated execution)
// trips the guardrail within far fewer intervals than one SLA measurement
// window, so the fallback engages before a single window's majority of
// decisions can go wrong.
func TestGuardrailTripsWithinSLAWindow(t *testing.T) {
	gr := DefaultGuardrail()
	s := guardrailState{cfg: gr}
	slaIntervals := SLAWindowInstrs / 10_000 // intervals per SLA window
	tripped := -1
	var prev []float64
	for i := 0; i < slaIntervals; i++ {
		b := degradedBase()
		b[0] += float64(i) // keep consecutive vectors distinct (not frozen)
		s.observeInterval(b, prev, true)
		prev = b
		if s.backoff > 0 {
			tripped = i + 1
			break
		}
	}
	if tripped < 0 {
		t.Fatalf("sustained misprediction streak never tripped within one SLA window (%d intervals)", slaIntervals)
	}
	if tripped > slaIntervals/2 {
		t.Errorf("tripped after %d intervals; want within half an SLA window (%d)", tripped, slaIntervals/2)
	}
}

// TestGuardrailTripsOnImplausibleTelemetry proves the plausibility path:
// frozen (identical consecutive) telemetry trips the watchdog even when
// the core is not gated, and a clean interval resets the streak.
func TestGuardrailTripsOnImplausibleTelemetry(t *testing.T) {
	s := guardrailState{cfg: DefaultGuardrail()}
	frozen := healthyBase()
	s.observeInterval(frozen, nil, false) // first read: nothing to compare
	s.observeInterval(frozen, frozen, false)
	s.observeInterval(frozen, frozen, false)
	if s.trips != 1 {
		t.Fatalf("trips = %d after sustained frozen telemetry, want 1", s.trips)
	}

	s2 := guardrailState{cfg: DefaultGuardrail()}
	s2.observeInterval(frozen, frozen, false)
	healthy := healthyBase()
	healthy[0]++
	s2.observeInterval(healthy, frozen, false)
	s2.observeInterval(frozen, healthy, false)
	if s2.trips != 0 {
		t.Fatalf("non-consecutive implausibility tripped the guardrail (%d trips)", s2.trips)
	}
}

// TestSafeModeOnBlackout pins the blackout recovery policy's state
// machine: under safe-mode-on-blackout a dark interval forces (and keeps
// refreshing) a short backoff without shortening a trip's longer one,
// while the default hold policy ignores blackouts entirely.
func TestSafeModeOnBlackout(t *testing.T) {
	gr := DefaultGuardrail()
	gr.SafeModeOnBlackout = true
	s := guardrailState{cfg: gr}
	s.noteBlackout()
	if s.backoff < 2 {
		t.Fatalf("backoff = %d after a dark interval, want >= 2", s.backoff)
	}
	if s.blackouts != 1 {
		t.Fatalf("blackouts = %d, want 1", s.blackouts)
	}
	s.backoff = 5 // an earlier trip's longer backoff must survive
	s.noteBlackout()
	if s.backoff != 5 {
		t.Fatalf("blackout shortened a trip's backoff to %d", s.backoff)
	}

	hold := guardrailState{cfg: DefaultGuardrail()}
	hold.noteBlackout()
	if hold.backoff != 0 || hold.blackouts != 0 {
		t.Fatalf("default policy reacted to a blackout: backoff=%d blackouts=%d",
			hold.backoff, hold.blackouts)
	}
}

func TestDeployGuardedNeverWorseOnViolations(t *testing.T) {
	e := env(t)
	// An always-gate controller is the worst case the guardrail exists
	// for: deploy on a high-ILP-heavy benchmark's trace.
	g := scriptedController(e, 1.0)
	var idx int = -1
	for i, tr := range e.spec.Traces {
		if tr.App.Benchmark == "625.x264_s" {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Skip("no x264 trace in subset")
	}
	plain, err := Deploy(g, e.spec.Traces[idx], e.specTel[idx], e.cfg, e.pm)
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := DeployGuarded(g, DefaultGuardrail(), e.spec.Traces[idx], e.specTel[idx], e.cfg, e.pm)
	if err != nil {
		t.Fatal(err)
	}
	if guarded.GuardrailTrips == 0 {
		t.Error("guardrail never tripped while force-gating a high-ILP benchmark")
	}
	if guarded.RelPerformance() < plain.RelPerformance()-1e-9 {
		t.Errorf("guardrail reduced performance: %.3f vs %.3f",
			guarded.RelPerformance(), plain.RelPerformance())
	}
	if guarded.LowResidency >= plain.LowResidency {
		t.Errorf("guardrail did not reduce wrongful residency: %.3f vs %.3f",
			guarded.LowResidency, plain.LowResidency)
	}
}

func TestDeployGuardedTransparentWhenSafe(t *testing.T) {
	e := env(t)
	// A never-gate controller never triggers the guardrail.
	g := scriptedController(e, 0.0)
	r, err := DeployGuarded(g, DefaultGuardrail(), e.spec.Traces[0], e.specTel[0], e.cfg, e.pm)
	if err != nil {
		t.Fatal(err)
	}
	if r.GuardrailTrips != 0 {
		t.Errorf("guardrail tripped %d times without gating", r.GuardrailTrips)
	}
	if r.LowResidency != 0 {
		t.Errorf("residency = %v without gating", r.LowResidency)
	}
}
