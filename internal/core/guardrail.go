package core

import (
	"fmt"

	"clustergate/internal/dataset"
	"clustergate/internal/power"
	"clustergate/internal/telemetry"
	"clustergate/internal/trace"
	"clustergate/internal/uarch"
)

// Guardrail is the fail-safe mechanism Section 3.1 reserves for the final
// CPU design: a reactive hardware monitor, independent of the ML models,
// that forces the core back to high-performance mode when gated execution
// shows signs of degradation, and holds it there for a backoff period.
//
// Because the guardrail only observes gated execution, it cannot know true
// high-performance IPC; it uses the model-side signal the paper hints at —
// sustained issue-bandwidth saturation while gated (the cluster is issuing
// at its full width and accumulating ready-µop backlog, so the second
// cluster would very likely help).
type Guardrail struct {
	// SaturationThreshold is the fraction of gated-interval cycles that
	// were busy above which the interval counts as saturated. Zero selects
	// 0.95.
	SaturationThreshold float64
	// ReadyWaitPerInstr is the ready-µop queueing delay per instruction
	// above which a saturated interval is treated as degraded. Zero
	// selects 0.5 cycles/instruction.
	ReadyWaitPerInstr float64
	// TripIntervals is how many consecutive degraded intervals trip the
	// guardrail. Zero selects 2.
	TripIntervals int
	// BackoffIntervals is how long gating stays forbidden after a trip.
	// Zero selects 8.
	BackoffIntervals int
}

// DefaultGuardrail returns a permissive configuration, per the paper's
// goal of setting guardrails "as permissively as possible".
func DefaultGuardrail() Guardrail {
	return Guardrail{
		SaturationThreshold: 0.90,
		ReadyWaitPerInstr:   0.5,
		TripIntervals:       2,
		BackoffIntervals:    8,
	}
}

func (gr *Guardrail) defaults() {
	if gr.SaturationThreshold == 0 {
		gr.SaturationThreshold = 0.90
	}
	if gr.ReadyWaitPerInstr == 0 {
		gr.ReadyWaitPerInstr = 0.5
	}
	if gr.TripIntervals == 0 {
		gr.TripIntervals = 2
	}
	if gr.BackoffIntervals == 0 {
		gr.BackoffIntervals = 8
	}
}

// guardrailState tracks the monitor across intervals.
type guardrailState struct {
	cfg      Guardrail
	degraded int // consecutive degraded gated intervals
	backoff  int // intervals remaining in forced high-perf
	trips    int
}

// observe inspects one gated interval's events and updates the trip state.
func (s *guardrailState) observe(base []float64) {
	ev := telemetry.BaseToEvents(base)
	if ev.Cycles == 0 || ev.Instrs == 0 {
		return
	}
	busyFrac := float64(ev.BusyCycles) / float64(ev.Cycles)
	readyWait := float64(ev.ReadyWaitCycles) / float64(ev.Instrs)
	if busyFrac >= s.cfg.SaturationThreshold && readyWait >= s.cfg.ReadyWaitPerInstr {
		s.degraded++
		if s.degraded >= s.cfg.TripIntervals {
			s.backoff = s.cfg.BackoffIntervals
			s.degraded = 0
			s.trips++
		}
	} else {
		s.degraded = 0
	}
}

// tick consumes one interval of backoff; it reports whether gating is
// currently forbidden.
func (s *guardrailState) tick() bool {
	if s.backoff > 0 {
		s.backoff--
		return true
	}
	return false
}

// GuardedDeploymentResult extends a deployment with guardrail accounting.
type GuardedDeploymentResult struct {
	DeploymentResult
	GuardrailTrips int
}

// DeployGuarded runs the controller closed-loop with the fail-safe
// guardrail layered over the model's decisions: whenever the guardrail has
// tripped, low-power decisions are overridden to high-performance until
// the backoff expires. Predictions are still recorded as the model made
// them, so PGOS/RSV measure the model while PPW measures the guarded
// system.
func DeployGuarded(g *GatingController, gr Guardrail, tr *trace.Trace,
	ref *dataset.TraceTelemetry, cfg dataset.Config, pm *power.Model) (*GuardedDeploymentResult, error) {
	gr.defaults()
	if tr.Name != ref.TraceName {
		return nil, fmt.Errorf("core: trace %q does not match telemetry %q", tr.Name, ref.TraceName)
	}
	k := g.Granularity / g.Interval
	if k <= 0 {
		return nil, fmt.Errorf("core: invalid granularity/interval %d/%d", g.Granularity, g.Interval)
	}

	core := uarch.NewCoreInMode(cfg.Core, uarch.ModeHighPerf)
	s := trace.NewStream(tr)
	buf := make([]trace.Instruction, g.Interval)
	for done := 0; done < cfg.Warmup; {
		n := cfg.Warmup - done
		if n > len(buf) {
			n = len(buf)
		}
		kk := s.Read(buf[:n])
		if kk == 0 {
			break
		}
		core.Execute(buf[:kk])
		done += kk
	}

	res := &GuardedDeploymentResult{}
	rng := newDeployRNG(tr.Seed)
	nWindows := ref.Intervals() / k
	state := guardrailState{cfg: gr}

	var window [][]float64
	prev := core.Events()
	lowIntervals, totalIntervals := 0, 0
	pending := make(map[int]uarch.Mode)

	for w := 0; w < nWindows; w++ {
		if m, ok := pending[w]; ok {
			if state.backoff > 0 {
				m = uarch.ModeHighPerf
			}
			if m != core.Mode() {
				res.Switches++
			}
			core.SetMode(m)
			delete(pending, w)
		}

		window = window[:0]
		for i := 0; i < k; i++ {
			kk := s.Read(buf)
			if kk == 0 {
				break
			}
			core.Execute(buf[:kk])
			cur := core.Events()
			delta := cur.Sub(prev)
			prev = cur
			base := telemetry.ExtractBase(delta)
			window = append(window, base)
			res.Adaptive.Add(pm, telemetry.BaseToEvents(base), core.Mode())
			if core.Mode() == uarch.ModeLowPower {
				lowIntervals++
				state.observe(base)
			}
			state.tick()
			totalIntervals++
		}
		if len(window) < k {
			break
		}

		if w+2 < nWindows {
			agg, per := g.windowVectors(window, rng)
			pred := g.decide(core.Mode(), agg, per)
			res.Pred = append(res.Pred, pred)
			res.Truth = append(res.Truth, windowTruth(ref, w+2, k, g.SLA))
			if pred == 1 {
				pending[w+2] = uarch.ModeLowPower
			} else {
				pending[w+2] = uarch.ModeHighPerf
			}
		}
	}

	for i := 0; i < totalIntervals && i < len(ref.HighPerf); i++ {
		res.Reference.Add(pm, telemetry.BaseToEvents(ref.HighPerf[i].Base), uarch.ModeHighPerf)
	}
	if totalIntervals > 0 {
		res.LowResidency = float64(lowIntervals) / float64(totalIntervals)
	}
	res.GuardrailTrips = state.trips
	return res, nil
}
