package core

import (
	"clustergate/internal/dataset"
	"clustergate/internal/obs"
	"clustergate/internal/power"
	"clustergate/internal/telemetry"
	"clustergate/internal/trace"
)

// Guardrail is the fail-safe mechanism Section 3.1 reserves for the final
// CPU design: a reactive hardware monitor, independent of the ML models,
// that forces the core back to the safe dual-cluster (high-performance)
// mode when gated execution shows signs of degradation, and holds it
// there for a backoff period.
//
// The watchdog distrusts the adaptation model on two signals:
//
//   - Misprediction streaks. The guardrail only observes gated execution,
//     so it cannot know true high-performance IPC; it uses the model-side
//     proxy the paper hints at — sustained issue-bandwidth saturation
//     while gated (the cluster is issuing at its full width and
//     accumulating ready-µop backlog, so the second cluster would very
//     likely help). TripIntervals consecutive saturated intervals trip it.
//   - Implausible telemetry. When the counter stream itself is corrupt —
//     dropped snapshots, frozen counters, glitched readings that break
//     physical invariants (telemetry.ImplausibleBase) — the model's
//     inputs cannot be trusted, so gating is suspended the same way.
//
// Every trip increments the core.guardrail.trips counter, so run
// manifests record how often the fallback path was exercised.
type Guardrail struct {
	// SaturationThreshold is the fraction of gated-interval cycles that
	// were busy above which the interval counts as saturated. Zero selects
	// 0.95.
	SaturationThreshold float64
	// ReadyWaitPerInstr is the ready-µop queueing delay per instruction
	// above which a saturated interval is treated as degraded. Zero
	// selects 0.5 cycles/instruction.
	ReadyWaitPerInstr float64
	// TripIntervals is how many consecutive degraded (or implausible)
	// intervals trip the guardrail. Zero selects 2.
	TripIntervals int
	// BackoffIntervals is how long gating stays forbidden after a trip.
	// Zero selects 8.
	BackoffIntervals int
	// SafeModeOnBlackout selects the telemetry-blackout recovery policy.
	// When the counter stream stops arriving (a dropped snapshot or a
	// trace-outage window), the default controller behaviour is to hold
	// its last decision; with this policy the watchdog instead forces the
	// safe dual-cluster mode for the duration of the blackout, releasing
	// it shortly after fresh telemetry returns. The false default keeps
	// existing configurations bit-identical.
	SafeModeOnBlackout bool
}

// GuardrailSignals is how many telemetry signals the watchdog monitors
// per interval (cycles, instructions, busy cycles, ready-wait cycles, and
// the two derived ratios); it keys the mcu.WatchdogCost charged against
// the firmware budget when a controller is built for guarded deployment.
const GuardrailSignals = 6

// DefaultGuardrail returns a permissive configuration, per the paper's
// goal of setting guardrails "as permissively as possible".
func DefaultGuardrail() Guardrail {
	return Guardrail{
		SaturationThreshold: 0.90,
		ReadyWaitPerInstr:   0.5,
		TripIntervals:       2,
		BackoffIntervals:    8,
	}
}

func (gr *Guardrail) defaults() {
	if gr.SaturationThreshold == 0 {
		gr.SaturationThreshold = 0.90
	}
	if gr.ReadyWaitPerInstr == 0 {
		gr.ReadyWaitPerInstr = 0.5
	}
	if gr.TripIntervals == 0 {
		gr.TripIntervals = 2
	}
	if gr.BackoffIntervals == 0 {
		gr.BackoffIntervals = 8
	}
}

// guardrailTrips counts every guardrail trip process-wide, for run
// manifests (the ISSUE's guardrail/trips counter).
var guardrailTrips = obs.NewCounter("core.guardrail.trips")

// guardrailBlackouts counts intervals where the safe-mode-on-blackout
// policy overrode the controller during a telemetry blackout.
var guardrailBlackouts = obs.NewCounter("core.guardrail.blackouts")

// guardrailState tracks the watchdog across intervals.
type guardrailState struct {
	cfg         Guardrail
	degraded    int // consecutive degraded gated intervals
	implausible int // consecutive implausible telemetry intervals
	backoff     int // intervals remaining in forced high-perf
	trips       int
	blackouts   int    // intervals overridden by safe-mode-on-blackout
	reason      string // what the latest trip fired on, for the event log
}

// trip forces the safe mode for the backoff period and records the event.
func (s *guardrailState) trip() {
	s.backoff = s.cfg.BackoffIntervals
	s.degraded = 0
	s.trips++
	guardrailTrips.Inc()
}

// noteBlackout records one dark (dropped-telemetry) interval. Under the
// safe-mode-on-blackout policy the watchdog treats the dark interval like
// an active backoff: gating is forbidden until at least two intervals of
// fresh telemetry have arrived, so a sustained outage keeps the core
// pinned to the safe dual-cluster mode for its whole duration. Under the
// default (hold) policy this is a no-op.
func (s *guardrailState) noteBlackout() {
	if !s.cfg.SafeModeOnBlackout {
		return
	}
	s.blackouts++
	guardrailBlackouts.Inc()
	if s.backoff < 2 {
		s.backoff = 2
	}
}

// observe inspects one gated interval's events and updates the
// misprediction-streak (saturation) trip state.
func (s *guardrailState) observe(base []float64) {
	ev := telemetry.BaseToEvents(base)
	if ev.Cycles == 0 || ev.Instrs == 0 {
		return
	}
	busyFrac := float64(ev.BusyCycles) / float64(ev.Cycles)
	readyWait := float64(ev.ReadyWaitCycles) / float64(ev.Instrs)
	if busyFrac >= s.cfg.SaturationThreshold && readyWait >= s.cfg.ReadyWaitPerInstr {
		s.degraded++
		if s.degraded >= s.cfg.TripIntervals {
			s.reason = "gated-saturation"
			s.trip()
		}
	} else {
		s.degraded = 0
	}
}

// observeInterval is the per-interval watchdog: it first screens the
// observed telemetry for plausibility (in any mode — a model fed garbage
// must not be allowed to gate), then, while gated, applies the saturation
// misprediction proxy to it.
func (s *guardrailState) observeInterval(observed, prevObserved []float64, gated bool) {
	if reason := telemetry.ImplausibleBase(observed, prevObserved); reason != "" {
		s.implausible++
		s.degraded = 0
		if s.implausible >= s.cfg.TripIntervals {
			s.reason = "implausible-telemetry"
			s.trip()
			s.implausible = 0
		}
		return
	}
	s.implausible = 0
	if gated {
		s.observe(observed)
	}
}

// tick consumes one interval of backoff; it reports whether gating is
// currently forbidden.
func (s *guardrailState) tick() bool {
	if s.backoff > 0 {
		s.backoff--
		return true
	}
	return false
}

// GuardedDeploymentResult extends a deployment with guardrail accounting.
type GuardedDeploymentResult struct {
	DeploymentResult
	GuardrailTrips int
	// BlackoutOverrides counts the dark intervals the
	// safe-mode-on-blackout policy overrode to the safe mode; always zero
	// under the default hold-last-decision policy.
	BlackoutOverrides int
}

// DeployGuarded runs the controller closed-loop with the fail-safe
// guardrail layered over the model's decisions: whenever the guardrail
// has tripped, low-power decisions are overridden to high-performance
// until the backoff expires. Predictions are still recorded as the model
// made them, so PGOS/RSV measure the model while PPW — and the Eff
// sequence — measure the guarded system.
func DeployGuarded(g *GatingController, gr Guardrail, tr *trace.Trace,
	ref *dataset.TraceTelemetry, cfg dataset.Config, pm *power.Model) (*GuardedDeploymentResult, error) {
	return DeployWithOptions(g, tr, ref, cfg, pm, DeployOptions{Guardrail: &gr})
}
