package core

import (
	"bytes"
	"errors"
	"testing"

	"clustergate/internal/fault"
	"clustergate/internal/mcu"
)

// constScorer is a zero-cost stand-in predictor for structural checks.
type constScorer struct{}

func (constScorer) Score([]float64) float64 { return 0 }

func TestValidateChargesWatchdogOps(t *testing.T) {
	spec := mcu.DefaultSpec()
	g := &GatingController{
		Name: "wd", Interval: 10_000, Granularity: 40_000,
		OpsPerPrediction: 545, WatchdogOps: 144,
		HighPerf: PointPredictor{M: constScorer{}},
		LowPower: PointPredictor{M: constScorer{}},
	}
	if err := g.Validate(spec); err == nil {
		t.Fatal("545 model + 144 watchdog ops passed a 625-op 40k budget")
	}
	g.Granularity, g.WatchdogOps = 50_000, 180
	if err := g.Validate(spec); err != nil {
		t.Fatalf("545 model + 180 watchdog ops in a 781-op 50k budget rejected: %v", err)
	}
}

func TestGuardedBuildReservesWatchdog(t *testing.T) {
	e := env(t)
	in := e.in
	in.Guardrail = true
	guarded, err := BuildBestRF(in)
	if err != nil {
		t.Fatal(err)
	}
	// The bare sizing is pure arithmetic on the model's op cost, so the
	// guarded build's coarsening can be checked without a second build.
	spec := mcu.DefaultSpec()
	wd := mcu.WatchdogCost(GuardrailSignals)
	bareG := spec.FinestGranularity(guarded.OpsPerPrediction, guarded.Interval)
	if guarded.Granularity <= bareG {
		t.Fatalf("guarded granularity %d not coarser than bare %d (watchdog reserve ignored)",
			guarded.Granularity, bareG)
	}
	if got := spec.FinestGranularityGuarded(guarded.OpsPerPrediction, guarded.Interval, wd); got != guarded.Granularity {
		t.Fatalf("guarded granularity %d, want the guarded-finest %d", guarded.Granularity, got)
	}
	k := guarded.Granularity / guarded.Interval
	if want := wd.Ops * k; guarded.WatchdogOps != want {
		t.Fatalf("guarded WatchdogOps = %d, want %d (%d intervals)", guarded.WatchdogOps, want, k)
	}
	if err := guarded.Validate(spec); err != nil {
		t.Fatal(err)
	}

	// The guarded controller round-trips through the sealed image with its
	// watchdog reserve intact.
	var buf bytes.Buffer
	if err := SaveController(&buf, guarded); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	loaded, err := LoadController(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.WatchdogOps != guarded.WatchdogOps {
		t.Fatalf("WatchdogOps lost in image round trip: %d vs %d",
			loaded.WatchdogOps, guarded.WatchdogOps)
	}

	// A flipped CRC byte leaves the payload intact: verification must
	// reject the image, while the flag-off path deploys it anyway — the
	// exact failure the detector exists to prevent.
	crcFlip := append([]byte(nil), img...)
	crcFlip[9] ^= 1
	if _, err := LoadController(bytes.NewReader(crcFlip)); !errors.Is(err, mcu.ErrImageCorrupt) {
		t.Fatalf("corrupted image load: got %v, want ErrImageCorrupt", err)
	}
	unverified, err := LoadControllerUnverified(bytes.NewReader(crcFlip))
	if err != nil {
		t.Fatalf("unverified load of a CRC-corrupt image: %v", err)
	}
	if unverified.Name != guarded.Name {
		t.Fatal("unverified load decoded the wrong controller")
	}

	// A payload bit flip is likewise rejected by the verified path.
	payFlip := append([]byte(nil), img...)
	payFlip[len(payFlip)-10] ^= 0x10
	if _, err := LoadController(bytes.NewReader(payFlip)); !errors.Is(err, mcu.ErrImageCorrupt) {
		t.Fatalf("payload-corrupt image load: got %v, want ErrImageCorrupt", err)
	}
}

// TestDeployDRAMDerateDegradesExecution proves the derate fault perturbs
// real execution in the deployment loop — the adaptive span slows down —
// while the recorded reference span is untouched.
func TestDeployDRAMDerateDegradesExecution(t *testing.T) {
	e := env(t)
	g := scriptedController(e, 0.0) // never gate: both runs stay in high-perf mode
	bare, err := Deploy(g, e.spec.Traces[0], e.specTel[0], e.cfg, e.pm)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.NewInjector(fault.Plan{Seed: 5, Rules: []fault.Rule{
		{Class: fault.DRAMDerate, Rate: 1, Burst: 1, Factor: 8},
	}})
	if err != nil {
		t.Fatal(err)
	}
	derated, err := DeployWithOptions(g, e.spec.Traces[0], e.specTel[0], e.cfg, e.pm,
		DeployOptions{Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	if derated.InjectedFaults == 0 {
		t.Fatal("rate-1 derate plan injected nothing")
	}
	if derated.Adaptive.Instrs != bare.Adaptive.Instrs {
		t.Fatalf("instruction counts diverged: %d vs %d", derated.Adaptive.Instrs, bare.Adaptive.Instrs)
	}
	if derated.Adaptive.Cycles <= bare.Adaptive.Cycles {
		t.Errorf("derated adaptive span took %d cycles, baseline %d; DRAM derate had no execution effect",
			derated.Adaptive.Cycles, bare.Adaptive.Cycles)
	}
	if derated.Reference.Cycles != bare.Reference.Cycles {
		t.Errorf("reference span shifted under derate: %d vs %d (must replay recorded telemetry)",
			derated.Reference.Cycles, bare.Reference.Cycles)
	}
	// SLA accounting uses the shifted real IPC against the clean reference.
	if derated.Adaptive.IPC() >= bare.Adaptive.IPC() {
		t.Errorf("derated adaptive IPC %.3f not below baseline %.3f",
			derated.Adaptive.IPC(), bare.Adaptive.IPC())
	}
}
