package core

import (
	"fmt"

	"clustergate/internal/dataset"
	"clustergate/internal/fault"
	"clustergate/internal/obs"
	"clustergate/internal/power"
	"clustergate/internal/telemetry"
	"clustergate/internal/trace"
	"clustergate/internal/uarch"
)

// DeployOptions harden a closed-loop deployment. The zero value reproduces
// the bare Deploy path exactly.
type DeployOptions struct {
	// Guardrail enables the SLA guardrail watchdog: implausible telemetry
	// and sustained gated-degradation streaks force the safe dual-cluster
	// (high-performance) mode until the backoff expires. Nil disables it.
	Guardrail *Guardrail
	// Injector schedules deterministic faults into the deployment: the
	// per-trace view is derived from the trace's own seed, so schedules
	// are identical at any worker count. Nil injects nothing.
	Injector *fault.Injector
}

// Deployment observability: closed-loop trace deployments completed and
// individual gating predictions issued, for run manifests.
var (
	deploysDone = obs.NewCounter("core.deployments")
	predsIssued = obs.NewCounter("core.predictions")
)

// DeployWithOptions is the hardened deployment engine behind Deploy and
// DeployGuarded: it runs the controller closed-loop over one trace with
// optional fault injection and the optional guardrail watchdog layered
// over the model's decisions.
//
// Fault semantics mirror real silicon: telemetry faults corrupt only what
// the controller *observes* (execution and power accounting always use
// the true event stream); a dropped snapshot leaves the controller
// holding its previous decision; prediction faults hijack the model's
// output after it is computed. Pred records the model/fault pipeline's
// decisions (so PGOS/RSV measure the predictor), while Eff records the
// configuration actually applied after guardrail overrides (so effective
// SLA violations measure the system).
func DeployWithOptions(g *GatingController, tr *trace.Trace, ref *dataset.TraceTelemetry,
	cfg dataset.Config, pm *power.Model, opts DeployOptions) (*GuardedDeploymentResult, error) {
	if tr.Name != ref.TraceName {
		return nil, fmt.Errorf("core: trace %q does not match telemetry %q", tr.Name, ref.TraceName)
	}
	k := g.Granularity / g.Interval
	if k <= 0 {
		return nil, fmt.Errorf("core: invalid granularity/interval %d/%d", g.Granularity, g.Interval)
	}

	var state *guardrailState
	if opts.Guardrail != nil {
		gr := *opts.Guardrail
		gr.defaults()
		state = &guardrailState{cfg: gr}
	}
	ti := opts.Injector.ForTrace(tr.Seed)

	// Flight recorder + event log: only active when the process has an
	// event log installed (-events), so ordinary runs pay a single atomic
	// load. Everything recorded is derived from sim state — the interval
	// index is the clock — so event files are identical at any worker
	// count.
	scope := "deploy/" + tr.Name
	var flight *obs.Flight
	if obs.EventsActive() {
		flight = obs.NewFlight(scope, obs.DefaultFlightCap)
	}
	tripsSeen := 0
	var injectedSeen int64

	core := uarch.NewCoreInMode(cfg.Core, uarch.ModeHighPerf)
	s := trace.NewStream(tr)
	buf := make([]trace.Instruction, g.Interval)

	// Warmup without recording, as during dataset generation.
	for done := 0; done < cfg.Warmup; {
		n := cfg.Warmup - done
		if n > len(buf) {
			n = len(buf)
		}
		kk := s.Read(buf[:n])
		if kk == 0 {
			break
		}
		core.Execute(buf[:kk])
		done += kk
	}

	res := &GuardedDeploymentResult{}
	rng := newDeployRNG(tr.Seed)
	nWindows := ref.Intervals() / k

	// applied[w] is the configuration actually in effect during window w
	// (1 = gated), or -1 for windows the trace never reached.
	applied := make([]int8, nWindows)
	for i := range applied {
		applied[i] = -1
	}

	var window [][]float64
	prev := core.Events()
	var prevTrue, prevObserved []float64
	lowIntervals, totalIntervals := 0, 0
	// pending[w] is the mode decided for window w (two windows ahead).
	pending := make(map[int]uarch.Mode)
	prevPred := 0
	gidx := 0 // global interval index, the fault schedule's clock

	for w := 0; w < nWindows; w++ {
		// Apply the decision made two windows ago (Figure 3 pipeline),
		// overridden to the safe mode while the guardrail backoff holds.
		if m, ok := pending[w]; ok {
			if state != nil && state.backoff > 0 {
				m = uarch.ModeHighPerf
			}
			if m != core.Mode() {
				res.Switches++
			}
			core.SetMode(m)
			delete(pending, w)
		}
		if core.Mode() == uarch.ModeLowPower {
			applied[w] = 1
		} else {
			applied[w] = 0
		}

		window = window[:0]
		windowDropped := false
		for i := 0; i < k; i++ {
			// DRAM-derate faults perturb real execution, not just the
			// telemetry view: memory-port throughput degrades for this
			// interval, so IPC, power, and every downstream counter shift.
			// MemDerate counts the injection, so it is read exactly once per
			// interval; the flight recorder reuses this value.
			derate := 1.0
			if ti != nil {
				derate = ti.MemDerate(gidx)
				core.SetMemDerate(derate)
			}
			kk := s.Read(buf)
			if kk == 0 {
				break
			}
			core.Execute(buf[:kk])
			cur := core.Events()
			delta := cur.Sub(prev)
			prev = cur
			trueBase := telemetry.ExtractBase(delta)
			observed := trueBase
			if ti != nil {
				o, _, dropped := ti.Telemetry(gidx, trueBase, prevTrue)
				observed = o
				if dropped {
					windowDropped = true
					if state != nil {
						state.noteBlackout()
					}
				}
			}
			window = append(window, observed)
			// Power accounting always follows true execution: faults
			// corrupt the telemetry fabric, not the pipeline.
			res.Adaptive.Add(pm, telemetry.BaseToEvents(trueBase), core.Mode())
			gated := core.Mode() == uarch.ModeLowPower
			if gated {
				lowIntervals++
			}
			if state != nil {
				state.observeInterval(observed, prevObserved, gated)
				state.tick()
			}
			if flight != nil {
				sample := obs.FlightSample{
					T:     int64(gidx),
					Power: pm.Energy(telemetry.BaseToEvents(trueBase), core.Mode()),
				}
				if delta.Cycles > 0 {
					sample.IPC = float64(delta.Instrs) / float64(delta.Cycles)
				}
				if derate != 1 {
					sample.MemDerate = derate
				}
				if gated {
					sample.Gated = 1
				}
				if state != nil {
					sample.Backoff = state.backoff
					sample.Trips = state.trips
				}
				flight.Record(sample)
				if state != nil && state.trips > tripsSeen {
					obs.Emit(scope, int64(gidx), "guardrail.trip", map[string]any{
						"reason":  state.reason,
						"trip":    state.trips,
						"backoff": state.cfg.BackoffIntervals,
					})
					if tripsSeen == 0 {
						// First trip of this deployment: freeze the flight
						// recorder's pre-incident window into the event log.
						flight.DumpIncident("guardrail.incident", map[string]any{"reason": state.reason})
					}
					tripsSeen = state.trips
				}
				if ti != nil {
					if inj := ti.Injected(); inj > injectedSeen {
						obs.Emit(scope, int64(gidx), "fault.injected", map[string]any{
							"count": inj - injectedSeen,
						})
						injectedSeen = inj
					}
				}
			}
			prevTrue = trueBase
			prevObserved = observed
			totalIntervals++
			gidx++
		}
		if len(window) < k {
			break
		}

		// Predict for window w+2 from window w's observed telemetry.
		if w+2 < nWindows {
			agg, per := g.windowVectors(window, rng)
			pred := g.decide(core.Mode(), agg, per)
			if ti != nil {
				if windowDropped {
					// No fresh snapshot arrived: the controller cannot
					// form a new prediction. Under the default policy it
					// holds its last decision; under safe-mode-on-blackout
					// it requests the safe dual-cluster mode instead.
					if state != nil && state.cfg.SafeModeOnBlackout {
						pred = 0
					} else {
						pred = prevPred
					}
				}
				pred, _ = ti.Prediction(w, pred, prevPred)
			}
			res.Pred = append(res.Pred, pred)
			res.Truth = append(res.Truth, windowTruth(ref, w+2, k, g.SLA))
			prevPred = pred
			if pred == 1 {
				pending[w+2] = uarch.ModeLowPower
			} else {
				pending[w+2] = uarch.ModeHighPerf
			}
		}
	}

	// Reference span: the recorded always-high run.
	for i := 0; i < totalIntervals && i < len(ref.HighPerf); i++ {
		res.Reference.Add(pm, telemetry.BaseToEvents(ref.HighPerf[i].Base), uarch.ModeHighPerf)
	}
	if totalIntervals > 0 {
		res.LowResidency = float64(lowIntervals) / float64(totalIntervals)
	}

	// Eff: the configuration the system actually ran during each
	// prediction's target window; decisions whose window the trace never
	// reached fall back to the decision itself.
	res.Eff = make([]int, len(res.Pred))
	for idx := range res.Pred {
		if w := idx + 2; w < nWindows && applied[w] >= 0 {
			res.Eff[idx] = int(applied[w])
		} else {
			res.Eff[idx] = res.Pred[idx]
		}
	}

	if state != nil {
		res.GuardrailTrips = state.trips
		res.BlackoutOverrides = state.blackouts
	}
	res.InjectedFaults = ti.Injected()
	deploysDone.Inc()
	predsIssued.Add(int64(len(res.Pred)))
	return res, nil
}
