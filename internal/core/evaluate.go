package core

import (
	"clustergate/internal/dataset"
	"clustergate/internal/metrics"
	"clustergate/internal/power"
	"clustergate/internal/trace"
)

// SLAWindowInstrs is the SLA measurement window expressed in instructions.
// The paper measures over T_SLA = 1 ms at 16G instructions/s (16M
// instructions); traces here are scaled down ~1000× from the paper's 200M
// SimPoints, so the window scales to 160k instructions, preserving the
// ratio of window length to trace length. A window is violated when more
// than half of its gating decisions are false positives (Eqs. 2–3).
const SLAWindowInstrs = 160_000

// Window returns the SLA window, in predictions, for a controller's
// granularity.
func (g *GatingController) Window() metrics.SLAWindow {
	w := SLAWindowInstrs / g.Granularity
	if w < 1 {
		w = 1
	}
	return metrics.SLAWindow{W: w}
}

// BenchResult aggregates deployment metrics over one benchmark (or any
// group of traces).
type BenchResult struct {
	Name      string
	Traces    int
	Confusion metrics.Confusion
	// RSV over all SLA windows of the group's traces.
	RSV float64
	// PPWGain and RelPerf are energy-weighted over the group.
	PPWGain   float64
	RelPerf   float64
	Residency float64
	Switches  int

	adaptive, reference power.Span
	windows, violations int
}

func (b *BenchResult) fold(r *DeploymentResult, win metrics.SLAWindow) {
	b.Traces++
	for i := range r.Pred {
		b.Confusion.Add(r.Pred[i], r.Truth[i])
	}
	// Count violating windows trace-locally (windows never straddle
	// traces, matching the paper's per-trace window accounting); partial
	// tail windows are skipped as statistically meaningless at this scale.
	w := win.W
	for start := 0; start+w <= len(r.Pred); start += w {
		fp := 0
		for i := start; i < start+w; i++ {
			if r.Pred[i] == 1 && r.Truth[i] == 0 {
				fp++
			}
		}
		b.windows++
		if float64(fp)/float64(w) > 0.5 {
			b.violations++
		}
	}
	if len(r.Pred) > 0 && len(r.Pred) < w {
		// Traces shorter than one window still contribute one window so
		// extremely coarse models are not unmeasurable.
		fp := 0
		for i := range r.Pred {
			if r.Pred[i] == 1 && r.Truth[i] == 0 {
				fp++
			}
		}
		b.windows++
		if float64(fp)/float64(len(r.Pred)) > 0.5 {
			b.violations++
		}
	}
	b.adaptive.Energy += r.Adaptive.Energy
	b.adaptive.Cycles += r.Adaptive.Cycles
	b.adaptive.Instrs += r.Adaptive.Instrs
	b.reference.Energy += r.Reference.Energy
	b.reference.Cycles += r.Reference.Cycles
	b.reference.Instrs += r.Reference.Instrs
	b.Residency += r.LowResidency
	b.Switches += r.Switches
}

func (b *BenchResult) finish() {
	if b.windows > 0 {
		b.RSV = float64(b.violations) / float64(b.windows)
	}
	if ref := b.reference.PPW(); ref > 0 {
		b.PPWGain = b.adaptive.PPW()/ref - 1
	}
	if ref := b.reference.IPC(); ref > 0 {
		b.RelPerf = b.adaptive.IPC() / ref
	}
	if b.Traces > 0 {
		b.Residency /= float64(b.Traces)
	}
}

// Summary is a corpus-level deployment evaluation.
type Summary struct {
	Controller string
	Overall    BenchResult
	// PerBenchmark is sorted by benchmark name; empty names (HDTR traces)
	// group under the application name instead.
	PerBenchmark []*BenchResult
}

// MeanBenchmarkPPWGain averages PPW gain across benchmarks, the statistic
// Figure 8 reports ("improves PPW by X% on average" across SPEC2017).
func (s *Summary) MeanBenchmarkPPWGain() float64 {
	if len(s.PerBenchmark) == 0 {
		return s.Overall.PPWGain
	}
	sum := 0.0
	for _, b := range s.PerBenchmark {
		sum += b.PPWGain
	}
	return sum / float64(len(s.PerBenchmark))
}

// EvaluateOnCorpus deploys the controller on every trace of the corpus and
// aggregates overall and per-benchmark results. tel must be the corpus's
// fixed-mode telemetry in trace order (as produced by SimulateCorpus).
//
// Per-trace deployments are independent (the controller is read-only
// during Deploy; all mutable state is trace-local), so they fan out over
// cfg.Workers workers; the floating-point aggregation then folds the
// ordered results serially, keeping the summary bit-identical at any
// worker count.
//
// It is the exact-oracle path of EvaluateOnCorpusOracle.
func EvaluateOnCorpus(g *GatingController, corpus *trace.Corpus, tel []*dataset.TraceTelemetry,
	cfg dataset.Config, pm *power.Model) (*Summary, error) {
	return EvaluateOnCorpusOracle(ExactOracle{}, g, corpus, tel, cfg, pm)
}
