package core

import (
	"bytes"
	"testing"

	"clustergate/internal/dataset"
	"clustergate/internal/mcu"
	"clustergate/internal/uarch"
)

func TestFirmwareImageRoundTripRF(t *testing.T) {
	e := env(t)
	g, err := BuildBestRF(e.in)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := SaveController(&buf, g); err != nil {
		t.Fatal(err)
	}
	t.Logf("firmware image size: %d bytes", buf.Len())

	loaded, err := LoadController(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != g.Name || loaded.Granularity != g.Granularity ||
		loaded.ThresholdHigh != g.ThresholdHigh || loaded.ThresholdLow != g.ThresholdLow {
		t.Fatalf("metadata mismatch: %+v vs %+v", loaded, g)
	}
	if err := loaded.Validate(mcu.DefaultSpec()); err != nil {
		t.Fatal(err)
	}

	// Identical decisions on identical inputs.
	lts := e.labeledSample(t)
	for _, x := range lts[:200] {
		a := g.HighPerf.ScoreWindow(x, nil)
		b := loaded.HighPerf.ScoreWindow(x, nil)
		if a != b {
			t.Fatalf("loaded high-perf model scores differ: %v vs %v", a, b)
		}
		a = g.LowPower.ScoreWindow(x, nil)
		b = loaded.LowPower.ScoreWindow(x, nil)
		if a != b {
			t.Fatalf("loaded low-power model scores differ: %v vs %v", a, b)
		}
	}

	// Identical deployment behaviour end to end.
	orig, err := Deploy(g, e.spec.Traces[0], e.specTel[0], e.cfg, e.pm)
	if err != nil {
		t.Fatal(err)
	}
	redeployed, err := Deploy(loaded, e.spec.Traces[0], e.specTel[0], e.cfg, e.pm)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig.Pred) != len(redeployed.Pred) {
		t.Fatal("prediction counts differ after reload")
	}
	for i := range orig.Pred {
		if orig.Pred[i] != redeployed.Pred[i] {
			t.Fatalf("prediction %d differs after firmware reload", i)
		}
	}
}

func TestFirmwareImageRoundTripMLP(t *testing.T) {
	e := env(t)
	g, err := BuildBestMLP(e.in)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveController(&buf, g); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadController(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range e.labeledSample(t)[:100] {
		if g.LowPower.ScoreWindow(x, nil) != loaded.LowPower.ScoreWindow(x, nil) {
			t.Fatal("MLP scores differ after reload")
		}
	}
}

func TestLoadControllerRejectsGarbage(t *testing.T) {
	if _, err := LoadController(bytes.NewReader([]byte("not a firmware image"))); err == nil {
		t.Error("garbage accepted as firmware image")
	}
}

// labeledSample exposes a deterministic sample of model inputs for
// equivalence checks.
func (e *testEnv) labeledSample(t *testing.T) [][]float64 {
	t.Helper()
	lts := dsBuildSample(e)
	if len(lts) < 200 {
		t.Fatal("not enough samples for equivalence check")
	}
	return lts
}

// dsBuildSample flattens windowed low-power samples from the shared env.
func dsBuildSample(e *testEnv) [][]float64 {
	lts := dataset.BuildLabeled(e.hdtrTel, e.cs, dataset.BuildOptions{
		Mode: uarch.ModeLowPower, SLA: dataset.SLA{PSLA: 0.9},
		Columns: e.cols, WindowIntervals: 4,
	})
	var out [][]float64
	for _, lt := range lts {
		out = append(out, lt.X...)
	}
	return out
}
