package core

import (
	"fmt"

	"clustergate/internal/dataset"
	"clustergate/internal/mcu"
	"clustergate/internal/ml/forest"
	"clustergate/internal/uarch"
)

// RetrainSLA produces a controller with identical structure but ground
// truth relabelled to a new SLA (Table 5's post-silicon retune): the same
// physical design, a different firmware image.
func RetrainSLA(in BuildInputs, psla float64) (*GatingController, error) {
	in.SLA = dataset.SLA{PSLA: psla}
	g, err := BuildBestRF(in)
	if err != nil {
		return nil, err
	}
	g.Name = fmt.Sprintf("best-rf-sla%.2f", psla)
	return g, nil
}

// BuildAppSpecificRF implements Table 6's application-specific retraining:
// per mode, a 4-tree depth-8 forest trained on the high-diversity corpus
// is grafted with a 4-tree depth-8 forest trained on the target
// application's own telemetry, forming the same 8×8 ensemble as Best RF.
// The paper found this grafting "reduces SLA violation rates significantly
// over just application-specific trees".
func BuildAppSpecificRF(in BuildInputs, appTel []*dataset.TraceTelemetry, appName string) (*GatingController, error) {
	in.defaults()
	if len(appTel) == 0 {
		return nil, fmt.Errorf("core: no application telemetry for %s", appName)
	}
	g := &GatingController{
		Name:     "app-rf-" + appName,
		Interval: in.Interval,
		Counters: in.Counters,
		Columns:  in.Columns,
		SLA:      in.SLA,
	}
	// The grafted ensemble has Best RF's shape, so its granularity is
	// known up front; train at that granularity.
	if in.GranularityOverride > 0 {
		g.Granularity = in.GranularityOverride
	} else {
		g.Granularity = in.Spec.FinestGranularity(mcu.ForestCost(8, 8).Ops, in.Interval)
	}
	kWin := g.Granularity / in.Interval
	maxOps := 0
	for _, mode := range []uarch.Mode{uarch.ModeHighPerf, uarch.ModeLowPower} {
		opts := dataset.BuildOptions{Mode: mode, SLA: in.SLA, Columns: in.Columns, WindowIntervals: kWin}
		hdtrLTs := dataset.BuildLabeled(in.Tel, in.Counters, opts)
		hdtrFull := dataset.Flatten(hdtrLTs, false)
		tune, _ := hdtrFull.SplitByApp(in.TuneFrac, in.Seed)

		appData := dataset.Build(appTel, in.Counters, opts)

		general, err := forest.Train(forest.Config{NumTrees: 4, MaxDepth: 8, Seed: in.Seed + int64(mode)}, tune)
		if err != nil {
			return nil, fmt.Errorf("core: general trees: %w", err)
		}
		specific, err := forest.Train(forest.Config{NumTrees: 4, MaxDepth: 8, Seed: in.Seed + 100 + int64(mode)}, appData)
		if err != nil {
			return nil, fmt.Errorf("core: app-specific trees: %w", err)
		}
		merged := forest.Merge(general, specific)

		fw, err := mcu.NewFirmware(fmt.Sprintf("%s-%s", g.Name, mode), merged, len(in.Columns))
		if err != nil {
			return nil, err
		}
		if fw.Cost.Ops > maxOps {
			maxOps = fw.Cost.Ops
		}
		thr := CalibrateThresholdRSV(fw, heldOutTraces(hdtrLTs, tune), g.Window(), in.MaxRSV)
		if mode == uarch.ModeLowPower {
			g.LowPower = PointPredictor{M: fw}
			g.ThresholdLow = thr
		} else {
			g.HighPerf = PointPredictor{M: fw}
			g.ThresholdHigh = thr
		}
	}
	g.OpsPerPrediction = maxOps
	return g, g.Validate(in.Spec)
}

// VerifyWindowArithmetic exposes the window count a controller will use on
// a trace with the given recorded intervals, for planning experiments.
func (g *GatingController) VerifyWindowArithmetic(intervals int) (windows, predictions int) {
	k := g.Granularity / g.Interval
	if k <= 0 {
		return 0, 0
	}
	windows = intervals / k
	predictions = windows - 2
	if predictions < 0 {
		predictions = 0
	}
	return windows, predictions
}
