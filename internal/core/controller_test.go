package core

import (
	"math/rand"
	"testing"

	"clustergate/internal/dataset"
	"clustergate/internal/metrics"
	"clustergate/internal/telemetry"
	"clustergate/internal/uarch"
)

// fixedScorer returns a fixed per-sample score keyed by the first feature.
type fixedScorer struct{ thr float64 }

func (f fixedScorer) Score(x []float64) float64 {
	if x[0] >= f.thr {
		return 0.9
	}
	return 0.1
}

func TestCalibrateThresholdRSVConservativeFloor(t *testing.T) {
	// A model that is aggressively wrong should be pushed to a high
	// threshold; one that is right keeps the 0.5 floor.
	mkTrace := func(x0 float64, y int, n int) *dataset.LabeledTrace {
		lt := &dataset.LabeledTrace{App: "a"}
		for i := 0; i < n; i++ {
			lt.X = append(lt.X, []float64{x0})
			lt.Y = append(lt.Y, y)
		}
		return lt
	}
	win := metrics.SLAWindow{W: 4}

	// Wrong model: scores 0.9 on truth-0 samples.
	wrong := []*dataset.LabeledTrace{mkTrace(1.0, 0, 16)}
	thr := CalibrateThresholdRSV(fixedScorer{thr: 0.5}, wrong, win, 0.01)
	if thr <= 0.9 {
		t.Errorf("wrong model calibrated to %v; should exceed its score 0.9", thr)
	}

	// Right model: scores 0.9 only on truth-1 samples.
	right := []*dataset.LabeledTrace{mkTrace(1.0, 1, 16), mkTrace(0.0, 0, 16)}
	thr = CalibrateThresholdRSV(fixedScorer{thr: 0.5}, right, win, 0.01)
	if thr != 0.5 {
		t.Errorf("correct model calibrated to %v; want the 0.5 floor", thr)
	}

	// No traces → neutral threshold.
	if thr := CalibrateThresholdRSV(fixedScorer{}, nil, win, 0.01); thr != 0.5 {
		t.Errorf("empty calibration = %v, want 0.5", thr)
	}
}

func TestWindowVectorsColumnSelection(t *testing.T) {
	cs := telemetry.NewStandardCounterSet()
	g := &GatingController{
		Counters: cs,
		Columns:  []int{0, 16}, // uop_cache_misses, instructions
		Interval: 10_000,
	}
	rng := rand.New(rand.NewSource(1))
	base1 := make([]float64, telemetry.NumBase)
	base2 := make([]float64, telemetry.NumBase)
	base1[0], base1[16], base1[telemetry.NumBase-1] = 100, 10_000, 5_000
	base2[0], base2[16], base2[telemetry.NumBase-1] = 300, 10_000, 5_000

	agg, per := g.windowVectors([][]float64{base1, base2}, rng)
	if len(agg) != 2 || len(per) != 2 || len(per[0]) != 2 {
		t.Fatalf("vector shapes: agg=%d per=%dx%d", len(agg), len(per), len(per[0]))
	}
	// Aggregate: (100+300)/(5000+5000) = 0.04; per-interval: 0.02 and 0.06.
	if agg[0] != 0.04 {
		t.Errorf("aggregate uop misses/cycle = %v, want 0.04", agg[0])
	}
	if per[0][0] != 0.02 || per[1][0] != 0.06 {
		t.Errorf("per-interval values = %v/%v, want 0.02/0.06", per[0][0], per[1][0])
	}
	// Aggregate IPC = 20000/10000 = 2.
	if agg[1] != 2 {
		t.Errorf("aggregate IPC = %v, want 2", agg[1])
	}
}

func TestDecideUsesModeSpecificModelAndThreshold(t *testing.T) {
	g := &GatingController{
		HighPerf:      scriptedPredictor(0.7),
		LowPower:      scriptedPredictor(0.7),
		ThresholdHigh: 0.6,
		ThresholdLow:  0.8,
	}
	if got := g.decide(uarch.ModeHighPerf, nil, nil); got != 1 {
		t.Error("high-perf model at threshold 0.6 should gate on score 0.7")
	}
	if got := g.decide(uarch.ModeLowPower, nil, nil); got != 0 {
		t.Error("low-power model at threshold 0.8 should not gate on score 0.7")
	}
}
