// Package core implements the paper's contribution: predictive cluster
// gating driven by machine-learning adaptation models executing in
// microcontroller firmware (Figure 1). A GatingController pairs one model
// per cluster configuration with calibrated sensitivity thresholds and a
// prediction granularity; Deploy runs the controller closed-loop on the
// cycle-level CPU model, switching modes with the paper's t→t+2 pipeline
// (telemetry from interval t, computed during t+1, applied at t+2), and
// reports PPW against an always-high-performance reference plus the
// PGOS/RSV prediction metrics of Section 4.2.
package core

import (
	"fmt"
	"math/rand"

	"clustergate/internal/dataset"
	"clustergate/internal/mcu"
	"clustergate/internal/metrics"
	"clustergate/internal/power"
	"clustergate/internal/telemetry"
	"clustergate/internal/trace"
	"clustergate/internal/uarch"
)

// Predictor is one mode's adaptation model as seen by the controller: it
// scores a prediction window, receiving both the aggregated counter vector
// and the per-interval vectors (histogram models use the latter).
type Predictor interface {
	ScoreWindow(agg []float64, perInterval [][]float64) float64
}

// PointPredictor adapts any point model (MLP, RF, LR, SVM, or their
// firmware wrappers) to the window interface using the aggregate vector.
type PointPredictor struct {
	M interface{ Score([]float64) float64 }
}

// ScoreWindow scores the aggregated counter vector.
func (p PointPredictor) ScoreWindow(agg []float64, _ [][]float64) float64 {
	return p.M.Score(agg)
}

// WindowPredictor adapts a window-consuming model such as SRCH.
type WindowPredictor struct {
	M interface{ ScoreWindow([][]float64) float64 }
}

// ScoreWindow scores the per-interval window.
func (p WindowPredictor) ScoreWindow(_ []float64, win [][]float64) float64 {
	return p.M.ScoreWindow(win)
}

// GatingController is a deployed adaptation configuration: the per-mode
// model pair (Section 4.1 trains one model on each mode's telemetry), their
// calibrated thresholds, the counter subset, and the prediction
// granularity supported by the microcontroller budget.
type GatingController struct {
	Name string

	// HighPerf scores telemetry recorded in high-performance mode;
	// LowPower scores telemetry recorded in low-power mode.
	HighPerf, LowPower Predictor
	// ThresholdHigh and ThresholdLow are the per-model sensitivities: a
	// score at or above the threshold selects low-power mode.
	ThresholdHigh, ThresholdLow float64

	// Interval is the telemetry snapshot granularity (10k instructions).
	Interval int
	// Granularity is the prediction/adaptation interval in instructions;
	// it must be a multiple of Interval.
	Granularity int

	// Counters is the full counter space; Columns the selected subset fed
	// to the models (nil = all).
	Counters *telemetry.CounterSet
	Columns  []int

	// SLA defines ground truth for evaluation.
	SLA dataset.SLA

	// OpsPerPrediction is the firmware inference cost, for budget checks.
	OpsPerPrediction int

	// WatchdogOps is the guardrail watchdog's firmware cost per prediction
	// granularity (one monitor pass per telemetry interval), reserved out
	// of the op budget when the controller was built for guarded
	// deployment; zero for a bare build.
	WatchdogOps int
}

// Validate checks structural consistency and the microcontroller budget.
func (g *GatingController) Validate(spec mcu.Spec) error {
	if g.HighPerf == nil || g.LowPower == nil {
		return fmt.Errorf("core: controller %q missing a per-mode model", g.Name)
	}
	if g.Interval <= 0 || g.Granularity <= 0 || g.Granularity%g.Interval != 0 {
		return fmt.Errorf("core: granularity %d not a positive multiple of interval %d",
			g.Granularity, g.Interval)
	}
	if g.OpsPerPrediction > 0 && g.OpsPerPrediction+g.WatchdogOps > spec.OpsBudget(g.Granularity) {
		return fmt.Errorf("core: %q needs %d ops (+%d watchdog) but the %d-instruction budget is %d",
			g.Name, g.OpsPerPrediction, g.WatchdogOps, g.Granularity, spec.OpsBudget(g.Granularity))
	}
	return nil
}

// windowVectors converts a window of base-signal deltas into the model's
// input space: the normalised aggregate vector and per-interval vectors,
// both restricted to the selected columns.
func (g *GatingController) windowVectors(window [][]float64, rng *rand.Rand) (agg []float64, per [][]float64) {
	sum := telemetry.Aggregate(window)
	agg = g.selectCols(g.Counters.Snapshot(sum, true, rng))
	per = make([][]float64, len(window))
	for i, b := range window {
		per[i] = g.selectCols(g.Counters.Snapshot(b, true, rng))
	}
	return agg, per
}

func (g *GatingController) selectCols(full []float64) []float64 {
	if g.Columns == nil {
		return full
	}
	out := make([]float64, len(g.Columns))
	for j, c := range g.Columns {
		out[j] = full[c]
	}
	return out
}

// decide runs the mode-appropriate model on a window and applies its
// threshold; it returns the predicted configuration (1 = gate).
func (g *GatingController) decide(mode uarch.Mode, agg []float64, per [][]float64) int {
	var score, thr float64
	if mode == uarch.ModeLowPower {
		score = g.LowPower.ScoreWindow(agg, per)
		thr = g.ThresholdLow
	} else {
		score = g.HighPerf.ScoreWindow(agg, per)
		thr = g.ThresholdHigh
	}
	if score >= thr {
		return 1
	}
	return 0
}

// DeploymentResult reports one trace's closed-loop run.
type DeploymentResult struct {
	// Pred[t] is the configuration the controller chose for prediction
	// window t; Truth[t] is the SLA-optimal configuration.
	Pred, Truth []int
	// Eff[t] is the configuration actually applied during prediction
	// window t after any guardrail override; without a guardrail it
	// equals Pred. SLA violations of the *system* are measured on Eff,
	// violations of the *model* on Pred.
	Eff []int
	// InjectedFaults counts fault events injected into this deployment
	// (zero without an injector).
	InjectedFaults int64
	// Adaptive accumulates the adaptive run; Reference the always-high
	// fixed-mode run of the same instructions.
	Adaptive, Reference power.Span
	// LowResidency is the fraction of recorded intervals spent gated.
	LowResidency float64
	// Switches counts mode transitions.
	Switches int
}

// PPWGain returns the relative performance-per-watt improvement of the
// adaptive run over the always-high-performance reference.
func (r *DeploymentResult) PPWGain() float64 {
	ref := r.Reference.PPW()
	if ref == 0 {
		return 0
	}
	return r.Adaptive.PPW()/ref - 1
}

// RelPerformance returns adaptive IPC relative to the reference (Table 5's
// "Avg. Performance Relative to High Perf Mode").
func (r *DeploymentResult) RelPerformance() float64 {
	ref := r.Reference.IPC()
	if ref == 0 {
		return 0
	}
	return r.Adaptive.IPC() / ref
}

// Eval computes the paper's prediction metrics for this run.
func (r *DeploymentResult) Eval(win metrics.SLAWindow) metrics.Eval {
	return metrics.Evaluate(r.Pred, r.Truth, win)
}

// EffectiveEval computes the same metrics on the configurations actually
// applied (after guardrail overrides): the system's SLA exposure rather
// than the model's.
func (r *DeploymentResult) EffectiveEval(win metrics.SLAWindow) metrics.Eval {
	return metrics.Evaluate(r.Eff, r.Truth, win)
}

// Deploy runs the controller closed-loop over one trace. ref must be the
// fixed-mode telemetry of the same trace (it provides ground-truth labels
// and the always-high reference for power accounting). It is the bare
// path of DeployWithOptions: no guardrail, no fault injection.
func Deploy(g *GatingController, tr *trace.Trace, ref *dataset.TraceTelemetry,
	cfg dataset.Config, pm *power.Model) (*DeploymentResult, error) {
	r, err := DeployWithOptions(g, tr, ref, cfg, pm, DeployOptions{})
	if err != nil {
		return nil, err
	}
	return &r.DeploymentResult, nil
}

// newDeployRNG seeds the deployment-time telemetry-noise stream.
func newDeployRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ 0x6465706c)) // "depl"
}

// windowTruth aggregates the fixed-mode IPCs over prediction window w and
// applies the SLA label.
func windowTruth(ref *dataset.TraceTelemetry, w, k int, sla dataset.SLA) int {
	hi, lo := 0.0, 0.0
	n := 0
	for i := w * k; i < (w+1)*k && i < ref.Intervals(); i++ {
		// Harmonic aggregation: equal instructions per interval, so
		// aggregate IPC is instructions over summed cycles.
		hi += 1 / ref.HighPerf[i].IPC
		lo += 1 / ref.LowPower[i].IPC
		n++
	}
	if n == 0 {
		return 0
	}
	return sla.Label(float64(n)/hi, float64(n)/lo)
}
