// Package core implements the paper's contribution: predictive cluster
// gating driven by machine-learning adaptation models executing in
// microcontroller firmware (Figure 1). A GatingController pairs one model
// per cluster configuration with calibrated sensitivity thresholds and a
// prediction granularity; Deploy runs the controller closed-loop on the
// cycle-level CPU model, switching modes with the paper's t→t+2 pipeline
// (telemetry from interval t, computed during t+1, applied at t+2), and
// reports PPW against an always-high-performance reference plus the
// PGOS/RSV prediction metrics of Section 4.2.
package core

import (
	"fmt"
	"math/rand"

	"clustergate/internal/dataset"
	"clustergate/internal/mcu"
	"clustergate/internal/metrics"
	"clustergate/internal/obs"
	"clustergate/internal/power"
	"clustergate/internal/telemetry"
	"clustergate/internal/trace"
	"clustergate/internal/uarch"
)

// Predictor is one mode's adaptation model as seen by the controller: it
// scores a prediction window, receiving both the aggregated counter vector
// and the per-interval vectors (histogram models use the latter).
type Predictor interface {
	ScoreWindow(agg []float64, perInterval [][]float64) float64
}

// PointPredictor adapts any point model (MLP, RF, LR, SVM, or their
// firmware wrappers) to the window interface using the aggregate vector.
type PointPredictor struct {
	M interface{ Score([]float64) float64 }
}

// ScoreWindow scores the aggregated counter vector.
func (p PointPredictor) ScoreWindow(agg []float64, _ [][]float64) float64 {
	return p.M.Score(agg)
}

// WindowPredictor adapts a window-consuming model such as SRCH.
type WindowPredictor struct {
	M interface{ ScoreWindow([][]float64) float64 }
}

// ScoreWindow scores the per-interval window.
func (p WindowPredictor) ScoreWindow(_ []float64, win [][]float64) float64 {
	return p.M.ScoreWindow(win)
}

// GatingController is a deployed adaptation configuration: the per-mode
// model pair (Section 4.1 trains one model on each mode's telemetry), their
// calibrated thresholds, the counter subset, and the prediction
// granularity supported by the microcontroller budget.
type GatingController struct {
	Name string

	// HighPerf scores telemetry recorded in high-performance mode;
	// LowPower scores telemetry recorded in low-power mode.
	HighPerf, LowPower Predictor
	// ThresholdHigh and ThresholdLow are the per-model sensitivities: a
	// score at or above the threshold selects low-power mode.
	ThresholdHigh, ThresholdLow float64

	// Interval is the telemetry snapshot granularity (10k instructions).
	Interval int
	// Granularity is the prediction/adaptation interval in instructions;
	// it must be a multiple of Interval.
	Granularity int

	// Counters is the full counter space; Columns the selected subset fed
	// to the models (nil = all).
	Counters *telemetry.CounterSet
	Columns  []int

	// SLA defines ground truth for evaluation.
	SLA dataset.SLA

	// OpsPerPrediction is the firmware inference cost, for budget checks.
	OpsPerPrediction int
}

// Validate checks structural consistency and the microcontroller budget.
func (g *GatingController) Validate(spec mcu.Spec) error {
	if g.HighPerf == nil || g.LowPower == nil {
		return fmt.Errorf("core: controller %q missing a per-mode model", g.Name)
	}
	if g.Interval <= 0 || g.Granularity <= 0 || g.Granularity%g.Interval != 0 {
		return fmt.Errorf("core: granularity %d not a positive multiple of interval %d",
			g.Granularity, g.Interval)
	}
	if g.OpsPerPrediction > 0 && g.OpsPerPrediction > spec.OpsBudget(g.Granularity) {
		return fmt.Errorf("core: %q needs %d ops but the %d-instruction budget is %d",
			g.Name, g.OpsPerPrediction, g.Granularity, spec.OpsBudget(g.Granularity))
	}
	return nil
}

// windowVectors converts a window of base-signal deltas into the model's
// input space: the normalised aggregate vector and per-interval vectors,
// both restricted to the selected columns.
func (g *GatingController) windowVectors(window [][]float64, rng *rand.Rand) (agg []float64, per [][]float64) {
	sum := telemetry.Aggregate(window)
	agg = g.selectCols(g.Counters.Snapshot(sum, true, rng))
	per = make([][]float64, len(window))
	for i, b := range window {
		per[i] = g.selectCols(g.Counters.Snapshot(b, true, rng))
	}
	return agg, per
}

func (g *GatingController) selectCols(full []float64) []float64 {
	if g.Columns == nil {
		return full
	}
	out := make([]float64, len(g.Columns))
	for j, c := range g.Columns {
		out[j] = full[c]
	}
	return out
}

// decide runs the mode-appropriate model on a window and applies its
// threshold; it returns the predicted configuration (1 = gate).
func (g *GatingController) decide(mode uarch.Mode, agg []float64, per [][]float64) int {
	var score, thr float64
	if mode == uarch.ModeLowPower {
		score = g.LowPower.ScoreWindow(agg, per)
		thr = g.ThresholdLow
	} else {
		score = g.HighPerf.ScoreWindow(agg, per)
		thr = g.ThresholdHigh
	}
	if score >= thr {
		return 1
	}
	return 0
}

// DeploymentResult reports one trace's closed-loop run.
type DeploymentResult struct {
	// Pred[t] is the configuration the controller chose for prediction
	// window t; Truth[t] is the SLA-optimal configuration.
	Pred, Truth []int
	// Adaptive accumulates the adaptive run; Reference the always-high
	// fixed-mode run of the same instructions.
	Adaptive, Reference power.Span
	// LowResidency is the fraction of recorded intervals spent gated.
	LowResidency float64
	// Switches counts mode transitions.
	Switches int
}

// PPWGain returns the relative performance-per-watt improvement of the
// adaptive run over the always-high-performance reference.
func (r *DeploymentResult) PPWGain() float64 {
	ref := r.Reference.PPW()
	if ref == 0 {
		return 0
	}
	return r.Adaptive.PPW()/ref - 1
}

// RelPerformance returns adaptive IPC relative to the reference (Table 5's
// "Avg. Performance Relative to High Perf Mode").
func (r *DeploymentResult) RelPerformance() float64 {
	ref := r.Reference.IPC()
	if ref == 0 {
		return 0
	}
	return r.Adaptive.IPC() / ref
}

// Eval computes the paper's prediction metrics for this run.
func (r *DeploymentResult) Eval(win metrics.SLAWindow) metrics.Eval {
	return metrics.Evaluate(r.Pred, r.Truth, win)
}

// Deployment observability: closed-loop trace deployments completed and
// individual gating predictions issued, for run manifests.
var (
	deploysDone = obs.NewCounter("core.deployments")
	predsIssued = obs.NewCounter("core.predictions")
)

// Deploy runs the controller closed-loop over one trace. ref must be the
// fixed-mode telemetry of the same trace (it provides ground-truth labels
// and the always-high reference for power accounting).
func Deploy(g *GatingController, tr *trace.Trace, ref *dataset.TraceTelemetry,
	cfg dataset.Config, pm *power.Model) (*DeploymentResult, error) {
	if tr.Name != ref.TraceName {
		return nil, fmt.Errorf("core: trace %q does not match telemetry %q", tr.Name, ref.TraceName)
	}
	k := g.Granularity / g.Interval
	if k <= 0 {
		return nil, fmt.Errorf("core: invalid granularity/interval %d/%d", g.Granularity, g.Interval)
	}

	core := uarch.NewCoreInMode(cfg.Core, uarch.ModeHighPerf)
	s := trace.NewStream(tr)
	buf := make([]trace.Instruction, g.Interval)

	// Warmup without recording, as during dataset generation.
	for done := 0; done < cfg.Warmup; {
		n := cfg.Warmup - done
		if n > len(buf) {
			n = len(buf)
		}
		kk := s.Read(buf[:n])
		if kk == 0 {
			break
		}
		core.Execute(buf[:kk])
		done += kk
	}

	res := &DeploymentResult{}
	rng := newDeployRNG(tr.Seed)
	nWindows := ref.Intervals() / k

	var window [][]float64
	prev := core.Events()
	lowIntervals, totalIntervals := 0, 0
	// pending[w] is the mode decided for window w (two windows ahead).
	pending := make(map[int]uarch.Mode)

	for w := 0; w < nWindows; w++ {
		// Apply the decision made two windows ago (Figure 3 pipeline).
		if m, ok := pending[w]; ok {
			if m != core.Mode() {
				res.Switches++
			}
			core.SetMode(m)
			delete(pending, w)
		}

		window = window[:0]
		for i := 0; i < k; i++ {
			kk := s.Read(buf)
			if kk == 0 {
				break
			}
			core.Execute(buf[:kk])
			cur := core.Events()
			delta := cur.Sub(prev)
			prev = cur
			window = append(window, telemetry.ExtractBase(delta))
			res.Adaptive.Add(pm, telemetry.BaseToEvents(window[len(window)-1]), core.Mode())
			if core.Mode() == uarch.ModeLowPower {
				lowIntervals++
			}
			totalIntervals++
		}
		if len(window) < k {
			break
		}

		// Predict for window w+2 from window w's telemetry.
		if w+2 < nWindows {
			agg, per := g.windowVectors(window, rng)
			pred := g.decide(core.Mode(), agg, per)
			res.Pred = append(res.Pred, pred)
			res.Truth = append(res.Truth, windowTruth(ref, w+2, k, g.SLA))
			if pred == 1 {
				pending[w+2] = uarch.ModeLowPower
			} else {
				pending[w+2] = uarch.ModeHighPerf
			}
		}
	}

	// Reference span: the recorded always-high run.
	for i := 0; i < totalIntervals && i < len(ref.HighPerf); i++ {
		res.Reference.Add(pm, telemetry.BaseToEvents(ref.HighPerf[i].Base), uarch.ModeHighPerf)
	}
	if totalIntervals > 0 {
		res.LowResidency = float64(lowIntervals) / float64(totalIntervals)
	}
	deploysDone.Inc()
	predsIssued.Add(int64(len(res.Pred)))
	return res, nil
}

// newDeployRNG seeds the deployment-time telemetry-noise stream.
func newDeployRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ 0x6465706c)) // "depl"
}

// windowTruth aggregates the fixed-mode IPCs over prediction window w and
// applies the SLA label.
func windowTruth(ref *dataset.TraceTelemetry, w, k int, sla dataset.SLA) int {
	hi, lo := 0.0, 0.0
	n := 0
	for i := w * k; i < (w+1)*k && i < ref.Intervals(); i++ {
		// Harmonic aggregation: equal instructions per interval, so
		// aggregate IPC is instructions over summed cycles.
		hi += 1 / ref.HighPerf[i].IPC
		lo += 1 / ref.LowPower[i].IPC
		n++
	}
	if n == 0 {
		return 0
	}
	return sla.Label(float64(n)/hi, float64(n)/lo)
}
