package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"clustergate/internal/dataset"
	"clustergate/internal/mcu"
	"clustergate/internal/ml/forest"
	"clustergate/internal/ml/linear"
	"clustergate/internal/ml/mlp"
	"clustergate/internal/ml/svm"
	"clustergate/internal/telemetry"
)

// FirmwareImage is the serialised form of a trained controller — the
// artifact Section 7.3's deployment story pushes to machines through
// datacenter infrastructure management software. The image carries the
// per-mode model parameters, calibrated thresholds, counter columns, and
// granularity; the counter-set definition itself is the standard on-die
// one, referenced by tag rather than embedded.
type FirmwareImage struct {
	FormatVersion int
	Name          string
	SLA           dataset.SLA
	Interval      int
	Granularity   int
	OpsPerPred    int
	WatchdogOps   int
	ThresholdHigh float64
	ThresholdLow  float64
	CounterSetTag string
	Columns       []int
	HighPerf      ModelBlob
	LowPower      ModelBlob
}

// ModelBlob is one mode's model: a kind tag plus gob-encoded parameters.
type ModelBlob struct {
	Kind string
	Gob  []byte
}

// imageFormatVersion guards against decoding incompatible images.
// Version 2 added the watchdog op reserve and the CRC integrity envelope.
const imageFormatVersion = 2

// standardCounterSetTag names the only counter space this design ships.
const standardCounterSetTag = "standard-936"

// SaveController writes a controller as a firmware image: the gob-encoded
// payload sealed in the mcu integrity envelope, so the deployment path can
// detect bit corruption before a damaged model reaches a machine.
func SaveController(w io.Writer, g *GatingController) error {
	img := FirmwareImage{
		FormatVersion: imageFormatVersion,
		Name:          g.Name,
		SLA:           g.SLA,
		Interval:      g.Interval,
		Granularity:   g.Granularity,
		OpsPerPred:    g.OpsPerPrediction,
		WatchdogOps:   g.WatchdogOps,
		ThresholdHigh: g.ThresholdHigh,
		ThresholdLow:  g.ThresholdLow,
		CounterSetTag: standardCounterSetTag,
		Columns:       append([]int(nil), g.Columns...),
	}
	var err error
	if img.HighPerf, err = encodeModel(g.HighPerf); err != nil {
		return fmt.Errorf("core: high-perf model: %w", err)
	}
	if img.LowPower, err = encodeModel(g.LowPower); err != nil {
		return fmt.Errorf("core: low-power model: %w", err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return fmt.Errorf("core: encoding firmware image: %w", err)
	}
	_, err = w.Write(mcu.SealImage(buf.Bytes()))
	return err
}

// LoadController reads a firmware image, verifies its integrity envelope,
// and reconstructs a deployable controller, rewrapping each model in
// op-metered firmware. A corrupted image fails with mcu.ErrImageCorrupt
// and never deploys.
func LoadController(r io.Reader) (*GatingController, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: reading firmware image: %w", err)
	}
	payload, err := mcu.OpenImage(raw)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return decodeImage(payload)
}

// LoadControllerUnverified skips the CRC check and decodes whatever payload
// the envelope claims to carry. It exists to demonstrate the failure mode
// the detector prevents: with verification off, a bit-flipped image can
// decode into a silently-wrong controller and deploy.
func LoadControllerUnverified(r io.Reader) (*GatingController, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: reading firmware image: %w", err)
	}
	payload, err := mcu.UnwrapImage(raw)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return decodeImage(payload)
}

// decodeImage reconstructs a controller from a verified (or deliberately
// unverified) gob payload.
func decodeImage(payload []byte) (*GatingController, error) {
	var img FirmwareImage
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&img); err != nil {
		return nil, fmt.Errorf("core: decoding firmware image: %w", err)
	}
	if img.FormatVersion != imageFormatVersion {
		return nil, fmt.Errorf("core: firmware image version %d unsupported", img.FormatVersion)
	}
	if img.CounterSetTag != standardCounterSetTag {
		return nil, fmt.Errorf("core: unknown counter set %q", img.CounterSetTag)
	}
	g := &GatingController{
		Name:             img.Name,
		SLA:              img.SLA,
		Interval:         img.Interval,
		Granularity:      img.Granularity,
		OpsPerPrediction: img.OpsPerPred,
		WatchdogOps:      img.WatchdogOps,
		ThresholdHigh:    img.ThresholdHigh,
		ThresholdLow:     img.ThresholdLow,
		Counters:         telemetry.NewStandardCounterSet(),
		Columns:          img.Columns,
	}
	var err error
	if g.HighPerf, err = decodeModel(img.HighPerf, img.Name+"-high", len(img.Columns)); err != nil {
		return nil, err
	}
	if g.LowPower, err = decodeModel(img.LowPower, img.Name+"-low", len(img.Columns)); err != nil {
		return nil, err
	}
	return g, nil
}

// encodeModel serialises one mode's predictor. Firmware wrappers are
// unwrapped; the image stores bare model parameters.
func encodeModel(p Predictor) (ModelBlob, error) {
	var m any
	switch pp := p.(type) {
	case PointPredictor:
		m = pp.M
		if fw, ok := m.(*mcu.Firmware); ok {
			m = fw.Model
		}
	case WindowPredictor:
		m = pp.M
	default:
		return ModelBlob{}, fmt.Errorf("unsupported predictor type %T", p)
	}

	var kind string
	switch m.(type) {
	case *forest.Forest:
		kind = "random-forest"
	case *forest.Tree:
		kind = "decision-tree"
	case *mlp.MLP:
		kind = "mlp"
	case *linear.Logistic:
		kind = "logistic"
	case *linear.SRCH:
		kind = "srch"
	case *svm.Linear:
		kind = "svm-linear"
	case *svm.Ensemble:
		kind = "svm-ensemble"
	default:
		return ModelBlob{}, fmt.Errorf("unsupported model type %T", m)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return ModelBlob{}, err
	}
	return ModelBlob{Kind: kind, Gob: buf.Bytes()}, nil
}

// decodeModel reconstructs a predictor from a blob, re-deriving its
// firmware cost.
func decodeModel(b ModelBlob, name string, inputs int) (Predictor, error) {
	dec := gob.NewDecoder(bytes.NewReader(b.Gob))
	var model interface{ Score([]float64) float64 }
	switch b.Kind {
	case "random-forest":
		m := &forest.Forest{}
		if err := dec.Decode(m); err != nil {
			return nil, err
		}
		model = m
	case "decision-tree":
		m := &forest.Tree{}
		if err := dec.Decode(m); err != nil {
			return nil, err
		}
		model = m
	case "mlp":
		m := &mlp.MLP{}
		if err := dec.Decode(m); err != nil {
			return nil, err
		}
		model = m
	case "logistic":
		m := &linear.Logistic{}
		if err := dec.Decode(m); err != nil {
			return nil, err
		}
		model = m
	case "srch":
		m := &linear.SRCH{}
		if err := dec.Decode(m); err != nil {
			return nil, err
		}
		return WindowPredictor{M: m}, nil
	case "svm-linear":
		m := &svm.Linear{}
		if err := dec.Decode(m); err != nil {
			return nil, err
		}
		model = m
	case "svm-ensemble":
		m := &svm.Ensemble{}
		if err := dec.Decode(m); err != nil {
			return nil, err
		}
		model = m
	default:
		return nil, fmt.Errorf("core: unknown model kind %q", b.Kind)
	}
	fw, err := mcu.NewFirmware(name, model, inputs)
	if err != nil {
		return nil, err
	}
	return PointPredictor{M: fw}, nil
}
