package core

import (
	"fmt"
	"sort"

	"clustergate/internal/dataset"
	"clustergate/internal/parallel"
	"clustergate/internal/power"
	"clustergate/internal/trace"
)

// SimMode names the simulation path a SimOracle runs deployments on.
type SimMode string

// The three oracle modes: exact is today's cycle-level simulator
// (byte-identical to calling Deploy directly), surrogate is the spliced-
// replay fast path, and validate is the fast path plus seeded exact spot
// checks that enforce an error budget.
const (
	SimExact     SimMode = "exact"
	SimSurrogate SimMode = "surrogate"
	SimValidate  SimMode = "validate"
)

// SimOracle is the single seam through which the soak-dominated paths —
// corpus evaluation, guardrail and fleet sweeps, pristine soaks — reach
// the simulator, so exact/surrogate/validate mode selection lives in one
// place. Deploy runs one closed-loop deployment; SimulateCorpus records
// fixed-mode telemetry (always on the exact simulator — recordings are
// the surrogate's own input, so there is no fast path for them).
type SimOracle interface {
	Mode() SimMode
	Deploy(g *GatingController, tr *trace.Trace, ref *dataset.TraceTelemetry,
		cfg dataset.Config, pm *power.Model, opts DeployOptions) (*GuardedDeploymentResult, error)
	SimulateCorpus(c *trace.Corpus, cfg dataset.Config, cacheDir string) ([]*dataset.TraceTelemetry, error)
}

// ExactOracle is the exact cycle-level simulator behind the SimOracle
// seam: thin delegation to DeployWithOptions and the memoised corpus
// simulator, byte-identical to calling them directly.
type ExactOracle struct{}

// Mode returns SimExact.
func (ExactOracle) Mode() SimMode { return SimExact }

// Deploy delegates to DeployWithOptions.
func (ExactOracle) Deploy(g *GatingController, tr *trace.Trace, ref *dataset.TraceTelemetry,
	cfg dataset.Config, pm *power.Model, opts DeployOptions) (*GuardedDeploymentResult, error) {
	return DeployWithOptions(g, tr, ref, cfg, pm, opts)
}

// SimulateCorpus delegates to the memoised exact simulator; an empty
// cacheDir simulates without touching disk.
func (ExactOracle) SimulateCorpus(c *trace.Corpus, cfg dataset.Config, cacheDir string) ([]*dataset.TraceTelemetry, error) {
	return dataset.SimulateCorpusCached(c, cfg, cacheDir)
}

// EvaluateOnCorpusOracle is EvaluateOnCorpus with the per-trace
// deployments routed through a SimOracle; with ExactOracle it is
// byte-identical to EvaluateOnCorpus.
func EvaluateOnCorpusOracle(oracle SimOracle, g *GatingController, corpus *trace.Corpus,
	tel []*dataset.TraceTelemetry, cfg dataset.Config, pm *power.Model) (*Summary, error) {
	if len(corpus.Traces) != len(tel) {
		return nil, fmt.Errorf("core: %d traces but %d telemetry records", len(corpus.Traces), len(tel))
	}
	win := g.Window()
	sum := &Summary{Controller: g.Name}
	byBench := map[string]*BenchResult{}

	runs, err := parallel.Map(cfg.Workers, len(corpus.Traces), func(i int) (*DeploymentResult, error) {
		r, err := oracle.Deploy(g, corpus.Traces[i], tel[i], cfg, pm, DeployOptions{})
		if err != nil {
			return nil, fmt.Errorf("core: deploying %s: %w", corpus.Traces[i].Name, err)
		}
		return &r.DeploymentResult, nil
	})
	if err != nil {
		return nil, err
	}

	for i, tr := range corpus.Traces {
		r := runs[i]
		sum.Overall.fold(r, win)
		key := tr.App.Benchmark
		if key == "" {
			key = tr.App.Name
		}
		b := byBench[key]
		if b == nil {
			b = &BenchResult{Name: key}
			byBench[key] = b
		}
		b.fold(r, win)
	}

	sum.Overall.Name = "overall"
	sum.Overall.finish()
	for _, b := range byBench {
		b.finish()
		sum.PerBenchmark = append(sum.PerBenchmark, b)
	}
	sort.Slice(sum.PerBenchmark, func(i, j int) bool {
		return sum.PerBenchmark[i].Name < sum.PerBenchmark[j].Name
	})
	return sum, nil
}
