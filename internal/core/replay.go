package core

import (
	"fmt"

	"clustergate/internal/dataset"
	"clustergate/internal/power"
	"clustergate/internal/telemetry"
	"clustergate/internal/trace"
	"clustergate/internal/uarch"
)

// IntervalModel supplies per-interval base-signal vectors for spliced
// replay: given the global interval index, the mode in effect, the DRAM
// derate factor for the interval, and the number of intervals since the
// last mode switch (SteadySinceSwitch when no switch is in flight), it
// returns an estimate of what the exact simulator's ExtractBase delta
// would have been. The surrogate package implements it by splicing
// recorded fixed-mode telemetry and correcting with a learned residual.
//
// Implementations must be deterministic and must not retain or mutate the
// returned slice after handing it over; ReplayDeploy treats it as owned.
type IntervalModel interface {
	IntervalBase(gidx int, mode uarch.Mode, derate float64, sinceSwitch int) []float64
}

// SteadySinceSwitch is the sinceSwitch value ReplayDeploy passes once a
// deployment is past any mode-switch transient (including the initial
// warmed-up high-performance state).
const SteadySinceSwitch = 1 << 20

// ReplayDeploy runs the closed-loop deployment control logic — decision
// pipeline, guardrail, fault injection, RNG-perturbed telemetry snapshots
// — at interval granularity, sourcing per-interval event vectors from an
// IntervalModel instead of executing instructions through the cycle
// model. It is a transliteration of DeployWithOptions with the uarch core
// replaced by the model: the windowing, the two-window decision pipeline,
// the guardrail/backoff state machine, the blackout policy, the fault
// schedule clock, and the deployment RNG consumption are all identical,
// so with a perfect model the result is identical too.
//
// Replay records no flight-recorder samples or events: the fast path is a
// screening tool, and incident forensics belong to the exact simulator.
func ReplayDeploy(g *GatingController, tr *trace.Trace, ref *dataset.TraceTelemetry,
	cfg dataset.Config, pm *power.Model, opts DeployOptions, im IntervalModel) (*GuardedDeploymentResult, error) {
	if tr.Name != ref.TraceName {
		return nil, fmt.Errorf("core: trace %q does not match telemetry %q", tr.Name, ref.TraceName)
	}
	k := g.Granularity / g.Interval
	if k <= 0 {
		return nil, fmt.Errorf("core: invalid granularity/interval %d/%d", g.Granularity, g.Interval)
	}

	var state *guardrailState
	if opts.Guardrail != nil {
		gr := *opts.Guardrail
		gr.defaults()
		state = &guardrailState{cfg: gr}
	}
	ti := opts.Injector.ForTrace(tr.Seed)

	res := &GuardedDeploymentResult{}
	rng := newDeployRNG(tr.Seed)
	nWindows := ref.Intervals() / k

	// applied[w] is the configuration actually in effect during window w
	// (1 = gated), or -1 for windows the replay never reached.
	applied := make([]int8, nWindows)
	for i := range applied {
		applied[i] = -1
	}

	var window [][]float64
	var prevTrue, prevObserved []float64
	lowIntervals, totalIntervals := 0, 0
	// pending[w] is the mode decided for window w (two windows ahead).
	pending := make(map[int]uarch.Mode)
	prevPred := 0
	gidx := 0 // global interval index, the fault schedule's clock
	mode := uarch.ModeHighPerf
	sinceSwitch := SteadySinceSwitch

	for w := 0; w < nWindows; w++ {
		// Apply the decision made two windows ago (Figure 3 pipeline),
		// overridden to the safe mode while the guardrail backoff holds.
		if m, ok := pending[w]; ok {
			if state != nil && state.backoff > 0 {
				m = uarch.ModeHighPerf
			}
			if m != mode {
				res.Switches++
				mode = m
				sinceSwitch = 0
			}
			delete(pending, w)
		}
		if mode == uarch.ModeLowPower {
			applied[w] = 1
		} else {
			applied[w] = 0
		}

		window = window[:0]
		windowDropped := false
		for i := 0; i < k; i++ {
			derate := 1.0
			if ti != nil {
				derate = ti.MemDerate(gidx)
			}
			trueBase := im.IntervalBase(gidx, mode, derate, sinceSwitch)
			observed := trueBase
			if ti != nil {
				o, _, dropped := ti.Telemetry(gidx, trueBase, prevTrue)
				observed = o
				if dropped {
					windowDropped = true
					if state != nil {
						state.noteBlackout()
					}
				}
			}
			window = append(window, observed)
			res.Adaptive.Add(pm, telemetry.BaseToEvents(trueBase), mode)
			gated := mode == uarch.ModeLowPower
			if gated {
				lowIntervals++
			}
			if state != nil {
				state.observeInterval(observed, prevObserved, gated)
				state.tick()
			}
			prevTrue = trueBase
			prevObserved = observed
			totalIntervals++
			gidx++
			if sinceSwitch < SteadySinceSwitch {
				sinceSwitch++
			}
		}

		// The recordings only hold full intervals, so the replayed stream
		// never runs dry inside the window loop; the len(window) < k exit
		// of the exact path is unreachable here.

		// Predict for window w+2 from window w's observed telemetry.
		if w+2 < nWindows {
			agg, per := g.windowVectors(window, rng)
			pred := g.decide(mode, agg, per)
			if ti != nil {
				if windowDropped {
					if state != nil && state.cfg.SafeModeOnBlackout {
						pred = 0
					} else {
						pred = prevPred
					}
				}
				pred, _ = ti.Prediction(w, pred, prevPred)
			}
			res.Pred = append(res.Pred, pred)
			res.Truth = append(res.Truth, windowTruth(ref, w+2, k, g.SLA))
			prevPred = pred
			if pred == 1 {
				pending[w+2] = uarch.ModeLowPower
			} else {
				pending[w+2] = uarch.ModeHighPerf
			}
		}
	}

	// Reference span: the recorded always-high run.
	for i := 0; i < totalIntervals && i < len(ref.HighPerf); i++ {
		res.Reference.Add(pm, telemetry.BaseToEvents(ref.HighPerf[i].Base), uarch.ModeHighPerf)
	}
	if totalIntervals > 0 {
		res.LowResidency = float64(lowIntervals) / float64(totalIntervals)
	}

	res.Eff = make([]int, len(res.Pred))
	for idx := range res.Pred {
		if w := idx + 2; w < nWindows && applied[w] >= 0 {
			res.Eff[idx] = int(applied[w])
		} else {
			res.Eff[idx] = res.Pred[idx]
		}
	}

	if state != nil {
		res.GuardrailTrips = state.trips
		res.BlackoutOverrides = state.blackouts
	}
	res.InjectedFaults = ti.Injected()
	return res, nil
}
