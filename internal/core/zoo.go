package core

import (
	"fmt"

	"clustergate/internal/dataset"
	"clustergate/internal/mcu"
	"clustergate/internal/metrics"
	"clustergate/internal/ml"
	"clustergate/internal/ml/forest"
	"clustergate/internal/ml/linear"
	"clustergate/internal/ml/mlp"
	"clustergate/internal/telemetry"
	"clustergate/internal/uarch"
)

// SRCHCoarseGranularity is the scaled equivalent of SRCH's originally
// proposed 10M-instruction interval. The paper's traces are 200M
// instructions; ours are ~500× shorter, so the coarse interval scales to
// 100k instructions while remaining an order of magnitude coarser than the
// fine-grained models.
const SRCHCoarseGranularity = 100_000

// BestRFTrainer returns the paper's Best RF configuration (8 trees of
// depth 8, Section 6.3) as a TrainFunc.
func BestRFTrainer() TrainFunc {
	return func(tune *ml.Dataset, seed int64) (interface{ Score([]float64) float64 }, error) {
		return forest.Train(forest.Config{NumTrees: 8, MaxDepth: 8, Seed: seed}, tune)
	}
}

// BestMLPTrainer returns the paper's Best MLP (3 layers, 8/8/4 filters),
// trained long enough for its probability estimates to calibrate well —
// the sensitivity threshold search needs a usable score ranking.
func BestMLPTrainer() TrainFunc {
	return func(tune *ml.Dataset, seed int64) (interface{ Score([]float64) float64 }, error) {
		return mlp.Train(mlp.Config{Hidden: []int{8, 8, 4}, Epochs: 60, BatchSize: 32, Seed: seed}, tune)
	}
}

// MLPTrainer returns a TrainFunc for an arbitrary topology; epochs 0
// selects the package default.
func MLPTrainer(hidden []int, epochs int) TrainFunc {
	return func(tune *ml.Dataset, seed int64) (interface{ Score([]float64) float64 }, error) {
		return mlp.Train(mlp.Config{Hidden: hidden, Epochs: epochs, Seed: seed}, tune)
	}
}

// RFTrainer returns a TrainFunc for an arbitrary forest shape.
func RFTrainer(trees, depth int) TrainFunc {
	return func(tune *ml.Dataset, seed int64) (interface{ Score([]float64) float64 }, error) {
		return forest.Train(forest.Config{NumTrees: trees, MaxDepth: depth, Seed: seed}, tune)
	}
}

// BuildBestRF trains and calibrates the paper's best model end to end.
func BuildBestRF(in BuildInputs) (*GatingController, error) {
	return BuildController("best-rf", BestRFTrainer(), in)
}

// BuildBestMLP trains and calibrates the paper's best neural network.
func BuildBestMLP(in BuildInputs) (*GatingController, error) {
	return BuildController("best-mlp", BestMLPTrainer(), in)
}

// BuildCHARSTAR reproduces the CHARSTAR baseline (Ravi et al.): a
// single-layer, 10-filter MLP over the eight expert counters of Eyerman et
// al., with ReLU activations, an uncalibrated 0.5 threshold, and a
// 20k-instruction interval (292 ops on this microcontroller). The caller's
// Columns are overridden with the expert counter set.
func BuildCHARSTAR(in BuildInputs) (*GatingController, error) {
	cols, err := ColumnsByName(in.Counters, telemetry.ExpertNames())
	if err != nil {
		return nil, err
	}
	in.Columns = cols
	in.NoCalibration = true
	return BuildController("charstar", MLPTrainer([]int{10}, 0), in)
}

// BuildSRCH reproduces the SRCH baseline of Dubach et al.: counter
// histograms (10 buckets) over the prediction window feeding a logistic
// regression, at the given granularity. Columns should hold the top-15
// counters (the paper substitutes PF-selected counters for the original
// 15).
func BuildSRCH(in BuildInputs, granularity int) (*GatingController, error) {
	in.defaults()
	g := &GatingController{
		Name:        fmt.Sprintf("srch-%dk", granularity/1000),
		Interval:    in.Interval,
		Granularity: granularity,
		Counters:    in.Counters,
		Columns:     in.Columns,
		SLA:         in.SLA,
	}
	maxOps := 0
	for _, mode := range []uarch.Mode{uarch.ModeHighPerf, uarch.ModeLowPower} {
		lts := dataset.BuildLabeled(in.Tel, in.Counters, dataset.BuildOptions{
			Mode: mode, SLA: in.SLA, Columns: in.Columns,
		})
		full := dataset.Flatten(lts, false)
		tune, _ := full.SplitByApp(in.TuneFrac, in.Seed)
		model, err := linear.TrainSRCH(linear.SRCHConfig{Buckets: 10}, tune)
		if err != nil {
			return nil, fmt.Errorf("core: training SRCH (%s): %w", mode, err)
		}
		cost := mcu.SRCHCost(len(in.Columns), 10)
		if cost.Ops > maxOps {
			maxOps = cost.Ops
		}
		thr := CalibrateThresholdRSV(model, heldOutTraces(lts, tune),
			metrics.SLAWindow{W: SLAWindowInstrs / in.Interval}, in.MaxRSV)
		if mode == uarch.ModeLowPower {
			g.LowPower = WindowPredictor{M: model}
			g.ThresholdLow = thr
		} else {
			g.HighPerf = WindowPredictor{M: model}
			g.ThresholdHigh = thr
		}
	}
	g.OpsPerPrediction = maxOps
	return g, g.Validate(in.Spec)
}

// ColumnsByName resolves counter names to counter-set indices.
func ColumnsByName(cs *telemetry.CounterSet, names []string) ([]int, error) {
	cols := make([]int, len(names))
	for i, n := range names {
		idx := cs.Index(n)
		if idx < 0 {
			return nil, fmt.Errorf("core: counter %q not in counter set", n)
		}
		cols[i] = idx
	}
	return cols, nil
}
