package core

import (
	"math"
	"testing"

	"clustergate/internal/dataset"
	"clustergate/internal/mcu"
	"clustergate/internal/power"
	"clustergate/internal/telemetry"
	"clustergate/internal/trace"
)

// testEnv bundles a small but representative training corpus, test corpus,
// and their telemetry, shared across integration tests.
type testEnv struct {
	cs      *telemetry.CounterSet
	cfg     dataset.Config
	cols    []int
	hdtrTel []*dataset.TraceTelemetry
	spec    *trace.Corpus
	specTel []*dataset.TraceTelemetry
	pm      *power.Model
	in      BuildInputs
}

var sharedEnv *testEnv

func env(t *testing.T) *testEnv {
	t.Helper()
	if sharedEnv != nil {
		return sharedEnv
	}
	if testing.Short() {
		t.Skip("integration environment skipped in -short mode")
	}
	cs := telemetry.NewStandardCounterSet()
	cfg := dataset.DefaultConfig()
	cfg.Warmup = 30_000

	hdtr := trace.BuildHDTR(trace.HDTRConfig{
		Apps: 84, MeanTracesPerApp: 2, InstrsPerTrace: 350_000, Seed: 11,
	})
	hdtrTel := dataset.SimulateCorpus(hdtr, cfg)

	spec := trace.BuildSPEC(trace.SPECConfig{TracesPerWorkload: 1, InstrsPerTrace: 450_000, Seed: 13})
	// Keep a manageable subset: first trace of each benchmark family.
	seen := map[string]int{}
	sub := &trace.Corpus{Name: "spec-sub"}
	for _, tr := range spec.Traces {
		if seen[tr.App.Benchmark] < 2 {
			seen[tr.App.Benchmark]++
			sub.Traces = append(sub.Traces, tr)
		}
	}
	specTel := dataset.SimulateCorpus(sub, cfg)

	cols, err := ColumnsByName(cs, telemetry.Table4Names())
	if err != nil {
		t.Fatal(err)
	}
	sharedEnv = &testEnv{
		cs:      cs,
		cfg:     cfg,
		cols:    cols,
		hdtrTel: hdtrTel,
		spec:    sub,
		specTel: specTel,
		pm:      power.DefaultModel(),
		in: BuildInputs{
			Tel:      hdtrTel,
			Counters: cs,
			Columns:  cols,
			SLA:      dataset.SLA{PSLA: 0.9},
			Interval: cfg.Interval,
			Spec:     mcu.DefaultSpec(),
			Seed:     7,
		},
	}
	return sharedEnv
}

func TestBuildBestRFEndToEnd(t *testing.T) {
	e := env(t)
	g, err := BuildBestRF(e.in)
	if err != nil {
		t.Fatal(err)
	}
	if g.Granularity != 40_000 {
		t.Errorf("Best RF granularity = %d, want 40000 (538-op budget fit)", g.Granularity)
	}
	if err := g.Validate(mcu.DefaultSpec()); err != nil {
		t.Fatal(err)
	}

	sum, err := EvaluateOnCorpus(g, e.spec, e.specTel, e.cfg, e.pm)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Overall.Confusion.Total() == 0 {
		t.Fatal("no predictions recorded")
	}
	if pgos := sum.Overall.Confusion.PGOS(); pgos < 0.35 {
		t.Errorf("PGOS = %.3f, implausibly low for a trained model", pgos)
	}
	if sum.Overall.RSV > 0.15 {
		t.Errorf("RSV = %.3f, calibration ineffective", sum.Overall.RSV)
	}
	if gain := sum.Overall.PPWGain; gain <= 0 {
		t.Errorf("PPW gain = %.3f, adaptive CPU should beat always-high", gain)
	}
	if rel := sum.Overall.RelPerf; rel < 0.85 || rel > 1.01 {
		t.Errorf("relative performance = %.3f, outside plausible band", rel)
	}
}

func TestCHARSTARMoreViolationsThanBestRF(t *testing.T) {
	e := env(t)
	rf, err := BuildBestRF(e.in)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := BuildCHARSTAR(e.in)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Granularity != 20_000 {
		t.Errorf("CHARSTAR granularity = %d, want 20000", ch.Granularity)
	}
	if ch.ThresholdHigh != 0.5 || ch.ThresholdLow != 0.5 {
		t.Error("CHARSTAR must use uncalibrated 0.5 thresholds")
	}

	rfSum, err := EvaluateOnCorpus(rf, e.spec, e.specTel, e.cfg, e.pm)
	if err != nil {
		t.Fatal(err)
	}
	chSum, err := EvaluateOnCorpus(ch, e.spec, e.specTel, e.cfg, e.pm)
	if err != nil {
		t.Fatal(err)
	}
	if chSum.Overall.RSV < rfSum.Overall.RSV {
		t.Errorf("CHARSTAR RSV %.4f < Best RF RSV %.4f; blindspot mitigation shows no effect",
			chSum.Overall.RSV, rfSum.Overall.RSV)
	}
}

// scriptedPredictor always answers the same configuration.
type scriptedPredictor float64

func (s scriptedPredictor) ScoreWindow(agg []float64, per [][]float64) float64 {
	return float64(s)
}

func scriptedController(e *testEnv, score float64) *GatingController {
	return &GatingController{
		Name:     "scripted",
		HighPerf: scriptedPredictor(score), LowPower: scriptedPredictor(score),
		ThresholdHigh: 0.5, ThresholdLow: 0.5,
		Interval: e.cfg.Interval, Granularity: 10_000,
		Counters: e.cs, Columns: e.cols,
		SLA: dataset.SLA{PSLA: 0.9},
	}
}

func TestDeployAlwaysHighKeepsReferenceBehaviour(t *testing.T) {
	e := env(t)
	g := scriptedController(e, 0.0) // never gate
	r, err := Deploy(g, e.spec.Traces[0], e.specTel[0], e.cfg, e.pm)
	if err != nil {
		t.Fatal(err)
	}
	if r.LowResidency != 0 {
		t.Errorf("never-gate residency = %v, want 0", r.LowResidency)
	}
	if r.Switches != 0 {
		t.Errorf("never-gate switches = %d, want 0", r.Switches)
	}
	// Adaptive run equals the reference run: PPW gain ≈ 0.
	if math.Abs(r.PPWGain()) > 0.02 {
		t.Errorf("never-gate PPW gain = %.4f, want ≈0", r.PPWGain())
	}
	if math.Abs(r.RelPerformance()-1) > 0.02 {
		t.Errorf("never-gate relative performance = %.4f, want ≈1", r.RelPerformance())
	}
}

func TestDeployAlwaysGate(t *testing.T) {
	e := env(t)
	g := scriptedController(e, 1.0) // always gate
	// Pick a serial-ish HDTR trace where gating is mostly safe; residency
	// should approach 1 after the two-window pipeline delay.
	var tr *trace.Trace
	var tel *dataset.TraceTelemetry
	hdtr := trace.BuildHDTR(trace.HDTRConfig{Apps: 84, MeanTracesPerApp: 2, InstrsPerTrace: 350_000, Seed: 11})
	for i, cand := range hdtr.Traces {
		if cand.Name == e.hdtrTel[i].TraceName {
			tr, tel = cand, e.hdtrTel[i]
			break
		}
	}
	if tr == nil {
		t.Fatal("no aligned trace found")
	}
	r, err := Deploy(g, tr, tel, e.cfg, e.pm)
	if err != nil {
		t.Fatal(err)
	}
	if r.LowResidency < 0.5 {
		t.Errorf("always-gate residency = %.3f, want >0.5 (pipeline delay only)", r.LowResidency)
	}
	if r.Switches != 1 {
		t.Errorf("always-gate switches = %d, want exactly 1 (high→low once)", r.Switches)
	}
	for _, p := range r.Pred {
		if p != 1 {
			t.Fatal("always-gate predictor produced a 0 decision")
		}
	}
}

func TestDeployTraceMismatch(t *testing.T) {
	e := env(t)
	g := scriptedController(e, 0)
	if _, err := Deploy(g, e.spec.Traces[0], e.specTel[1], e.cfg, e.pm); err == nil {
		t.Error("mismatched trace/telemetry accepted")
	}
}

func TestControllerValidate(t *testing.T) {
	e := env(t)
	g := scriptedController(e, 0)
	if err := g.Validate(mcu.DefaultSpec()); err != nil {
		t.Errorf("valid controller rejected: %v", err)
	}
	bad := *g
	bad.Granularity = 15_000 // not a multiple of 10k
	if err := bad.Validate(mcu.DefaultSpec()); err == nil {
		t.Error("non-multiple granularity accepted")
	}
	bad2 := *g
	bad2.OpsPerPrediction = 1_000_000
	if err := bad2.Validate(mcu.DefaultSpec()); err == nil {
		t.Error("over-budget controller accepted")
	}
	bad3 := *g
	bad3.LowPower = nil
	if err := bad3.Validate(mcu.DefaultSpec()); err == nil {
		t.Error("missing model accepted")
	}
}

func TestWindowArithmetic(t *testing.T) {
	g := &GatingController{Interval: 10_000, Granularity: 40_000}
	windows, preds := g.VerifyWindowArithmetic(20)
	if windows != 5 || preds != 3 {
		t.Errorf("windows/preds = %d/%d, want 5/3", windows, preds)
	}
	if w := g.Window(); w.W != 4 {
		t.Errorf("SLA window = %d predictions, want 4 (160k/40k)", w.W)
	}
}

func TestCalibrationLowersFalsePositives(t *testing.T) {
	e := env(t)
	calibrated, err := BuildBestMLP(e.in)
	if err != nil {
		t.Fatal(err)
	}
	inRaw := e.in
	inRaw.NoCalibration = true
	raw, err := BuildBestMLP(inRaw)
	if err != nil {
		t.Fatal(err)
	}
	if calibrated.ThresholdLow < raw.ThresholdLow && calibrated.ThresholdHigh < raw.ThresholdHigh {
		t.Errorf("calibration produced thresholds below 0.5 on both modes: %v/%v",
			calibrated.ThresholdHigh, calibrated.ThresholdLow)
	}

	calSum, err := EvaluateOnCorpus(calibrated, e.spec, e.specTel, e.cfg, e.pm)
	if err != nil {
		t.Fatal(err)
	}
	rawSum, err := EvaluateOnCorpus(raw, e.spec, e.specTel, e.cfg, e.pm)
	if err != nil {
		t.Fatal(err)
	}
	if calSum.Overall.RSV > rawSum.Overall.RSV+1e-9 {
		t.Errorf("calibration raised RSV: %.4f vs %.4f", calSum.Overall.RSV, rawSum.Overall.RSV)
	}
}

func TestRetrainSLALoosensGating(t *testing.T) {
	e := env(t)
	tight, err := RetrainSLA(e.in, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := RetrainSLA(e.in, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	tightSum, err := EvaluateOnCorpus(tight, e.spec, e.specTel, e.cfg, e.pm)
	if err != nil {
		t.Fatal(err)
	}
	looseSum, err := EvaluateOnCorpus(loose, e.spec, e.specTel, e.cfg, e.pm)
	if err != nil {
		t.Fatal(err)
	}
	if looseSum.Overall.Residency <= tightSum.Overall.Residency {
		t.Errorf("P_SLA 0.7 residency %.3f ≤ 0.9 residency %.3f; looser SLA should gate more",
			looseSum.Overall.Residency, tightSum.Overall.Residency)
	}
	if looseSum.Overall.PPWGain <= tightSum.Overall.PPWGain {
		t.Errorf("P_SLA 0.7 PPW gain %.3f ≤ 0.9 gain %.3f (Table 5 shape)",
			looseSum.Overall.PPWGain, tightSum.Overall.PPWGain)
	}
}

func TestBuildSRCH(t *testing.T) {
	e := env(t)
	in := e.in
	g, err := BuildSRCH(in, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := EvaluateOnCorpus(g, e.spec, e.specTel, e.cfg, e.pm)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Overall.Confusion.Total() == 0 {
		t.Fatal("SRCH made no predictions")
	}

	coarse, err := BuildSRCH(in, SRCHCoarseGranularity)
	if err != nil {
		t.Fatal(err)
	}
	coarseSum, err := EvaluateOnCorpus(coarse, e.spec, e.specTel, e.cfg, e.pm)
	if err != nil {
		t.Fatal(err)
	}
	if coarseSum.Overall.PPWGain > sum.Overall.PPWGain {
		t.Errorf("coarse SRCH gain %.3f exceeds fine-grained %.3f; granularity effect inverted",
			coarseSum.Overall.PPWGain, sum.Overall.PPWGain)
	}
}

func TestBuildAppSpecificRF(t *testing.T) {
	e := env(t)
	// Use one benchmark's telemetry as the "application".
	groups := dataset.ByBenchmark(e.specTel)
	var appTel []*dataset.TraceTelemetry
	for name, g := range groups {
		if name != "" && len(g) >= 2 {
			appTel = g
			break
		}
	}
	if appTel == nil {
		t.Skip("no multi-trace benchmark in the test subset")
	}
	g, err := BuildAppSpecificRF(e.in, appTel[:1], "test-app")
	if err != nil {
		t.Fatal(err)
	}
	if g.OpsPerPrediction == 0 {
		t.Error("grafted forest reports zero inference cost")
	}
	if err := g.Validate(mcu.DefaultSpec()); err != nil {
		t.Fatal(err)
	}
}

func TestMeanBenchmarkPPWGain(t *testing.T) {
	s := &Summary{
		PerBenchmark: []*BenchResult{
			{Name: "a", PPWGain: 0.1},
			{Name: "b", PPWGain: 0.3},
		},
	}
	if got := s.MeanBenchmarkPPWGain(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("mean gain = %v, want 0.2", got)
	}
	empty := &Summary{}
	empty.Overall.PPWGain = 0.05
	if got := empty.MeanBenchmarkPPWGain(); got != 0.05 {
		t.Errorf("fallback gain = %v, want overall", got)
	}
}

func TestWindowTruthAggregation(t *testing.T) {
	ref := &dataset.TraceTelemetry{
		HighPerf: []dataset.IntervalRecord{{IPC: 4}, {IPC: 4}, {IPC: 2}, {IPC: 2}},
		LowPower: []dataset.IntervalRecord{{IPC: 3.8}, {IPC: 3.8}, {IPC: 1.0}, {IPC: 1.0}},
	}
	sla := dataset.SLA{PSLA: 0.9}
	if got := windowTruth(ref, 0, 2, sla); got != 1 {
		t.Errorf("window 0 truth = %d, want 1 (3.8 ≥ 0.9×4)", got)
	}
	if got := windowTruth(ref, 1, 2, sla); got != 0 {
		t.Errorf("window 1 truth = %d, want 0 (1.0 < 0.9×2)", got)
	}
	if got := windowTruth(ref, 5, 2, sla); got != 0 {
		t.Errorf("out-of-range window truth = %d, want 0", got)
	}
}
