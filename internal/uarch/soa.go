package uarch

import "clustergate/internal/trace"

// This file holds the struct-of-arrays half of the Execute hot loop: the
// per-batch scratch slices, the decode pass that fills them, and the
// cache/branch-predictor probe passes that run over them in program order
// before the timing pass prices anything. Splitting the work this way
// keeps each pass's working set small and its branches predictable — the
// cache pass touches only cache arrays, the branch pass only predictor
// tables, the timing pass only the scratch slices and cycle rings — while
// the strict program-order walk inside every stateful pass keeps all
// counters byte-identical to the old per-instruction interleaving (locked
// by TestGoldenCounters and the determinism tests).

// Instruction flags derived from the op class, used by the timing pass.
const (
	flagLoad uint8 = 1 << iota
	flagStore
	flagBranch
	flagDiv
)

// info-byte layout: low three bits carry the memory-access class
// (memNone..memDemand), the upper bits carry per-instruction conditions
// discovered by the probe passes.
const (
	infoClassMask  uint8 = 0x07
	infoLegacy     uint8 = 1 << 3 // fetch block missed the µop cache
	infoMispredict uint8 = 1 << 4 // branch direction was mispredicted
)

// buildOpLUT maps an op class to its timing-pass flags (low byte) and base
// execution latency (bits 8+), so the hot loop resolves both with a single
// table load. Loads map to latency zero because their latency always comes
// from the memory class; every unknown op defaults to a single cycle like
// the old switch.
func buildOpLUT(cfg *Config) (t [256]uint32) {
	for i := range t {
		t[i] = 1 << 8
	}
	lat := func(op trace.OpClass, l int) { t[op] = t[op]&0xff | uint32(l)<<8 }
	fl := func(op trace.OpClass, f uint8) { t[op] |= uint32(f) }
	fl(trace.OpLoad, flagLoad)
	fl(trace.OpStore, flagStore)
	fl(trace.OpBranch, flagBranch)
	fl(trace.OpDiv, flagDiv)
	fl(trace.OpFPDiv, flagDiv)
	lat(trace.OpMul, 3)
	lat(trace.OpFPAdd, 4)
	lat(trace.OpFPMul, 4)
	lat(trace.OpDiv, cfg.DivLatency)
	lat(trace.OpFPDiv, cfg.DivLatency)
	lat(trace.OpLoad, 0)
	return
}

// probeBuf holds one chunk's probe-pass output. Only probe-pass
// discoveries live here; the timing pass reads the instruction stream
// itself straight from the caller's batch, which both passes walk
// chunk-by-chunk anyway.
// Each instruction's probe result packs into one word — the info byte in
// the low 8 bits, the front-end bubble (I-side miss cycles) above it — so
// the handoff between the passes is one store and one load per
// instruction over a single contiguous stream.
type probeBuf struct {
	word []uint64 // bubble<<8 | mem class | legacy-decode | mispredict bits
}

// execScratch holds two probe buffers so the probe pass for chunk k+1 can
// run concurrently with the timing pass for chunk k (see Execute). The
// buffers are grown once to the chunk size and reused for every subsequent
// Execute call, so steady-state execution performs no heap allocations
// (pinned by TestExecuteZeroAllocs).
type execScratch struct {
	buf [2]probeBuf
}

func (s *execScratch) grow(n int) {
	for i := range s.buf {
		b := &s.buf[i]
		if cap(b.word) < n {
			b.word = make([]uint64, n)
			continue
		}
		b.word = b.word[:n]
	}
}

// probePass walks the chunk once in program order, resolving everything
// that depends on machine state other than timing: the I-side structures
// and the data-side hierarchy (in the one order that matters, because the
// L2 is shared between instruction and data misses), plus the branch
// predictor — its tables are disjoint from every cache, so resolving
// directions in the same sweep reorders nothing observable. Each
// instruction's front-end bubble and condition bits land in buf; op-mix
// and branch events accumulate locally. Cache and predictor state depend
// only on the instruction stream, never on timing, which is what makes
// hoisting this pass out of the timing loop exact — and what lets Execute
// run it on a separate goroutine from the timing pass: the two touch
// disjoint Core state (caches/predictor/I-side vs. cycle rings) and
// disjoint Events fields.
func (c *Core) probePass(batch []trace.Instruction, s *probeBuf) {
	h := c.hier
	bp := c.bp
	lastBlock := c.lastBlock
	legacy := c.legacyDecode
	var branches, taken, miss uint64
	var hist [16]uint32 // histogram over op classes (masked: classes fit in 4 bits)
	// Histograms over the classify byte, one per access direction: the
	// byte fully determines an access's event deltas, so crediting the
	// counters once per chunk from these replaces five-plus memory
	// read-modify-writes per access with plain register arithmetic.
	var memHist [2][64]uint32
	for i := range batch {
		in := &batch[i]
		op := uint8(in.Op)
		hist[op&15]++
		var bub uint32
		// One I-side probe per fetch block (fetchBlock instructions of 4
		// bytes each = one 64-byte block).
		if block := in.PC / (fetchBlock * 4); block != lastBlock {
			lastBlock = block
			bub, legacy = c.probeISideBlock(in.PC)
		}
		info := uint8(0)
		if legacy {
			info = infoLegacy
		}
		switch op {
		case uint8(trace.OpLoad):
			r := h.classify(in.Addr, false)
			memHist[0][r&63]++
			info |= r & infoClassMask
		case uint8(trace.OpStore):
			r := h.classify(in.Addr, true)
			memHist[1][r&63]++
			info |= r & infoClassMask
		case uint8(trace.OpBranch):
			branches++
			if in.Taken {
				taken++
			}
			if bp.PredictAndUpdate(in.PC, in.Taken) {
				miss++
				info |= infoMispredict
			}
		}
		s.word[i] = uint64(bub)<<8 | uint64(info)
	}
	c.lastBlock = lastBlock
	c.legacyDecode = legacy
	for w, byDir := range memHist {
		for r, cnt := range byDir {
			if cnt != 0 {
				accumClassEvents(w == 1, uint8(r), uint64(cnt), &c.ev)
			}
		}
	}
	c.ev.Branches += branches
	c.ev.TakenBranches += taken
	c.ev.Mispredicts += miss
	c.ev.MulOps += uint64(hist[trace.OpMul])
	c.ev.FPOps += uint64(hist[trace.OpFPAdd] + hist[trace.OpFPMul] + hist[trace.OpFPDiv])
	c.ev.DivOps += uint64(hist[trace.OpDiv] + hist[trace.OpFPDiv])
}

// probeISideBlock models the micro-op cache, instruction cache, and ITLB
// for a new fetch block, returning the front-end bubble to charge and
// whether the block decodes through the legacy pipe.
func (c *Core) probeISideBlock(pc uint64) (bubble uint32, legacy bool) {
	var bub uint64
	if hit, _ := c.itlb.Access(pc, false); !hit {
		c.ev.ITLBMisses++
		bub += 20
	}
	if hit, _ := c.uopCache.Access(pc, false); hit {
		c.ev.UopCacheHits++
	} else {
		c.ev.UopCacheMisses++
		legacy = true
		if l1hit, _ := c.icache.Access(pc, false); l1hit {
			c.ev.L1IHits++
		} else {
			c.ev.L1IMisses++
			if l2hit, _ := c.hier.L2.Access(pc, false); l2hit {
				bub += uint64(c.cfg.L2Latency)
			} else {
				bub += uint64(c.cfg.MemLatency) / 2
			}
		}
	}
	if bub > 0 {
		c.ev.FetchBubbles += bub
	}
	return uint32(bub), legacy
}
