package uarch

import (
	"runtime"
	"testing"

	"clustergate/internal/trace"
)

// TestPipelinedExecuteMatchesSerial locks the two-stage probe/timing
// pipeline to the serial schedule. On a single-CPU host the pipeline is
// disabled by default, so the test raises GOMAXPROCS for its duration to
// force the pipelined path, then compares the full Events snapshot against
// a core fed the same trace in sub-chunk batches (which always take the
// serial path). Any ordering bug between the overlapped passes shows up as
// a counter diff.
func TestPipelinedExecuteMatchesSerial(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))

	const total = 40 * execChunk
	app := trace.NewApplication(3, "pipeline", 5)
	gen := func(batchLen int) Events {
		core := NewCoreInMode(DefaultConfig(), ModeHighPerf)
		s := trace.NewStream(&trace.Trace{App: app, Seed: 23, NumInstrs: total})
		buf := make([]trace.Instruction, batchLen)
		for {
			k := s.Read(buf)
			if k == 0 {
				break
			}
			core.Execute(buf[:k])
		}
		return core.Events()
	}

	serial := gen(execChunk / 2) // single-chunk batches never pipeline
	piped := gen(16 * execChunk) // multi-chunk batches overlap the passes
	if serial != piped {
		t.Errorf("pipelined Execute diverges from serial schedule:\nserial: %+v\npiped:  %+v", serial, piped)
	}
}
