package uarch

import (
	"testing"

	"clustergate/internal/trace"
)

func TestStreamPrefetcherCoversSequentialMisses(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(&cfg)
	var ev Events
	// Sequential line walk over a DRAM-sized region: after the first miss
	// trains the stream table, subsequent line misses are prefetch fills.
	base := uint64(0x4000_0000)
	for i := uint64(0); i < 200; i++ {
		h.AccessData(base+i*64, false, i*10, 0, true, &ev)
	}
	if ev.PrefetchFills < 150 {
		t.Errorf("prefetch fills = %d of %d sequential misses; stream detection broken",
			ev.PrefetchFills, ev.L2Misses)
	}
}

func TestRandomMissesBypassPrefetcher(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(&cfg)
	var ev Events
	addr := uint64(0x4000_0000)
	for i := 0; i < 200; i++ {
		addr = addr*6364136223846793005 + 1442695040888963407 // LCG walk
		h.AccessData(0x4000_0000+(addr%(1<<30))&^63, false, uint64(i*10), 0, true, &ev)
	}
	if ev.PrefetchFills > 10 {
		t.Errorf("prefetch fills = %d on random misses; false stream hits", ev.PrefetchFills)
	}
}

func TestMSHRThrottleLimitsIndependentMisses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemGap = 0 // isolate the MSHR effect from channel bandwidth
	h := NewHierarchy(&cfg)
	var ev Events
	// A burst of independent random misses at the same request time: the
	// k-th should be delayed by ~k×MemLatency/MSHRs.
	gap := (cfg.MemLatency + cfg.MSHRs - 1) / cfg.MSHRs
	var lastLat int
	for i := 0; i < 24; i++ {
		addr := uint64(0x5000_0000) + uint64(i)*1_048_576*64
		lastLat = h.AccessData(addr, false, 0, 0, true, &ev)
	}
	wantMin := cfg.MemLatency + 20*gap // 24th miss queues behind ~23 others
	if lastLat < wantMin {
		t.Errorf("24th burst miss latency = %d, want ≥%d (MSHR throttling)", lastLat, wantMin)
	}
}

func TestMSHRThrottleSkipsChainedMisses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemGap = 0
	h := NewHierarchy(&cfg)
	var ev Events
	// Dependent (chained) misses never queue on the MSHR throttle.
	for i := 0; i < 24; i++ {
		addr := uint64(0x5000_0000) + uint64(i)*1_048_576*64
		lat := h.AccessData(addr, false, uint64(i), 0, false, &ev)
		if lat > cfg.MemLatency+25 {
			t.Fatalf("chained miss %d latency = %d; should bypass MSHR throttle", i, lat)
		}
	}
}

func TestPerClusterMSHRIndependence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemGap = 0
	h := NewHierarchy(&cfg)
	var ev Events
	// Saturate cluster 0's MSHRs; cluster 1 must be unaffected.
	for i := 0; i < 24; i++ {
		addr := uint64(0x5000_0000) + uint64(i)*1_048_576*64
		h.AccessData(addr, false, 0, 0, true, &ev)
	}
	lat := h.AccessData(0x7000_0000, false, 0, 1, true, &ev)
	if lat > cfg.MemLatency+25 {
		t.Errorf("cluster-1 miss latency = %d; MSHR files should be per-cluster", lat)
	}
}

func TestDRAMBandwidthSharedAcrossClusters(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(&cfg)
	var ev Events
	// Alternate clusters; the channel gap applies globally.
	var last int
	for i := 0; i < 40; i++ {
		addr := uint64(0x5000_0000) + uint64(i)*1_048_576*64
		last = h.AccessData(addr, false, 0, uint8(i%2), false, &ev)
	}
	if last < cfg.MemLatency+30*cfg.MemGap {
		t.Errorf("40th miss latency = %d; DRAM channel should serialize across clusters", last)
	}
}

func TestProducerSkipInStream(t *testing.T) {
	// A branch-heavy phase: dependencies must never point at branches or
	// stores, which produce no register value.
	p := trace.PhaseParams{
		DepDist: 2.5, LoadFrac: 0.1, StoreFrac: 0.15, BranchFrac: 0.25,
		DataFootprint: 64 << 10, CodeFootprint: 8 << 10,
		StrideFrac: 0.2, BranchEntropy: 0.3,
	}
	app := synthApp(p)
	buf := make([]trace.Instruction, 30_000)
	trace.NewStream(&trace.Trace{App: app, Seed: 5, NumInstrs: len(buf)}).Read(buf)
	violations := 0
	for i, in := range buf {
		for _, d := range []int32{in.Dep1, in.Dep2} {
			if d <= 0 || int(d) > i || int(d) > 500 {
				continue
			}
			producer := buf[i-int(d)]
			if producer.Op == trace.OpBranch || producer.Op == trace.OpStore {
				violations++
			}
		}
	}
	// The skip walk is bounded, so a small residue is tolerated.
	if frac := float64(violations) / float64(len(buf)); frac > 0.02 {
		t.Errorf("%.2f%% of dependencies point at non-producers", 100*frac)
	}
}
