package uarch

import (
	"testing"

	"clustergate/internal/trace"
)

// TestExecuteZeroAllocs pins steady-state Execute to zero heap allocations
// per call: the scratch buffers grow once on the first call and are reused
// forever after, and nothing in the probe, timing, or pipelined paths may
// allocate. A regression here silently re-introduces per-batch garbage in
// the innermost loop of every experiment.
func TestExecuteZeroAllocs(t *testing.T) {
	app := trace.NewApplication(2, "allocs", 7)
	s := trace.NewStream(&trace.Trace{App: app, Seed: 3, NumInstrs: 3 * execChunk})
	batch := make([]trace.Instruction, 3*execChunk)
	n := 0
	for n < len(batch) {
		k := s.Read(batch[n:])
		if k == 0 {
			break
		}
		n += k
	}
	batch = batch[:n]

	core := NewCore(DefaultConfig())
	core.Execute(batch) // warm-up: grows scratch, starts the probe pool

	if avg := testing.AllocsPerRun(50, func() {
		core.Execute(batch)
	}); avg != 0 {
		t.Fatalf("steady-state Execute allocates %.1f times per call, want 0", avg)
	}
}
