package uarch

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"clustergate/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_events.json from the current simulator")

// goldenScenarios enumerates the locked configurations: a seeded
// mixed-phase trace per mode, with and without a DRAM derate, plus a run
// that gates and ungates mid-trace so the SetMode microcode interplay is
// covered. The instruction counts are large enough to exercise every
// event field.
func goldenScenarios() []struct {
	Name     string
	Mode     Mode
	Derate   float64
	Switches bool
} {
	return []struct {
		Name     string
		Mode     Mode
		Derate   float64
		Switches bool
	}{
		{"high-perf", ModeHighPerf, 0, false},
		{"low-power", ModeLowPower, 0, false},
		{"high-perf-derated", ModeHighPerf, 6, false},
		{"low-power-derated", ModeLowPower, 6, false},
		{"mode-switching", ModeHighPerf, 0, true},
	}
}

func goldenRun(mode Mode, derate float64, switches bool) Events {
	core := NewCoreInMode(DefaultConfig(), mode)
	if derate > 1 {
		core.SetMemDerate(derate)
	}
	app := trace.NewApplication(2, "golden", 11)
	s := trace.NewStream(&trace.Trace{App: app, Seed: 17, NumInstrs: 80_000})
	buf := make([]trace.Instruction, 4096)
	for i := 0; ; i++ {
		k := s.Read(buf)
		if k == 0 {
			break
		}
		core.Execute(buf[:k])
		if switches {
			if i%2 == 0 {
				core.SetMode(ModeLowPower)
			} else {
				core.SetMode(ModeHighPerf)
			}
		}
	}
	return core.Events()
}

// TestGoldenCounters locks the full Events snapshot of seeded runs to a
// committed fixture, field by field. Any change to the timing model —
// intended or not — shows up as a named-counter diff here, which is the
// contract that lets the hot loop be rewritten for speed: the existing
// determinism tests prove run-to-run stability, this one proves stability
// across code changes. Regenerate deliberately with
//
//	go test ./internal/uarch -run TestGoldenCounters -update
func TestGoldenCounters(t *testing.T) {
	path := filepath.Join("testdata", "golden_events.json")
	got := make(map[string]Events)
	for _, sc := range goldenScenarios() {
		got[sc.Name] = goldenRun(sc.Mode, sc.Derate, sc.Switches)
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create): %v", err)
	}
	var want map[string]Events
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	for _, sc := range goldenScenarios() {
		w, ok := want[sc.Name]
		if !ok {
			t.Errorf("%s: scenario missing from fixture (stale testdata?)", sc.Name)
			continue
		}
		g := got[sc.Name]
		if g == w {
			continue
		}
		// Field-by-field diff so a regression names the exact counters.
		gv, wv := reflect.ValueOf(g), reflect.ValueOf(w)
		for i := 0; i < gv.NumField(); i++ {
			if gv.Field(i).Uint() != wv.Field(i).Uint() {
				t.Errorf("%s: %s = %d, golden %d", sc.Name,
					gv.Type().Field(i).Name, gv.Field(i).Uint(), wv.Field(i).Uint())
			}
		}
	}
}
