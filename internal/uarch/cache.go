package uarch

import "fmt"

// CacheConfig describes a set-associative cache (or TLB, with LineBytes set
// to the page size).
type CacheConfig struct {
	SizeBytes int
	Ways      int
	LineBytes int
}

// Sets returns the number of sets implied by the geometry.
func (c CacheConfig) Sets() int {
	if c.Ways <= 0 || c.LineBytes <= 0 {
		panic(fmt.Sprintf("uarch: invalid cache config %+v", c))
	}
	sets := c.SizeBytes / (c.Ways * c.LineBytes)
	if sets < 1 {
		sets = 1
	}
	// Round down to a power of two for cheap indexing.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	return p
}

// EvictKind classifies what a cache access displaced.
type EvictKind uint8

const (
	EvictNone EvictKind = iota
	// EvictClean is a "silent" eviction: the line was not dirty, so no
	// writeback traffic was generated. The paper's counter 2 ("L2 Silent
	// Evictions") counts these at the L2.
	EvictClean
	EvictDirty
)

type cacheLineState struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint32
}

// Cache is a set-associative cache with true LRU replacement and
// write-back, write-allocate semantics.
type Cache struct {
	cfg      CacheConfig
	sets     [][]cacheLineState
	setMask  uint64
	lineBits uint
	tick     uint32
}

// NewCache builds a cache from its geometry.
func NewCache(cfg CacheConfig) *Cache {
	nSets := cfg.Sets()
	c := &Cache{
		cfg:     cfg,
		sets:    make([][]cacheLineState, nSets),
		setMask: uint64(nSets - 1),
	}
	lines := make([]cacheLineState, nSets*cfg.Ways)
	for i := range c.sets {
		c.sets[i] = lines[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	for b := cfg.LineBytes; b > 1; b >>= 1 {
		c.lineBits++
	}
	return c
}

// Access looks up addr, allocating on miss. write marks the line dirty.
// It reports whether the access hit and what kind of line (if any) the
// allocation evicted.
func (c *Cache) Access(addr uint64, write bool) (hit bool, evicted EvictKind) {
	c.tick++
	lineAddr := addr >> c.lineBits
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr >> uint(len64(c.setMask))

	victim := 0
	var victimLRU uint32 = ^uint32(0)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			l.lru = c.tick
			if write {
				l.dirty = true
			}
			return true, EvictNone
		}
		if !l.valid {
			victim = i
			victimLRU = 0
		} else if l.lru < victimLRU {
			victim = i
			victimLRU = l.lru
		}
	}

	v := &set[victim]
	if v.valid {
		if v.dirty {
			evicted = EvictDirty
		} else {
			evicted = EvictClean
		}
	}
	*v = cacheLineState{tag: tag, valid: true, dirty: write, lru: c.tick}
	return false, evicted
}

// Reset invalidates the entire cache.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = cacheLineState{}
		}
	}
	c.tick = 0
}

// len64 returns the number of significant bits in mask (mask is 2^k - 1).
func len64(mask uint64) int {
	n := 0
	for mask != 0 {
		n++
		mask >>= 1
	}
	return n
}

// Hierarchy bundles the data-side cache levels and TLB and resolves a load
// or store to a latency, updating hit/miss/eviction statistics. It also
// enforces off-chip memory bandwidth: misses to DRAM are serviced at most
// one line per Config.MemGap cycles, which is what makes streaming
// workloads equally slow in both cluster configurations (and therefore
// gateable), as on real hardware.
type Hierarchy struct {
	L1D  *Cache
	L2   *Cache
	DTLB *Cache
	cfg  *Config

	memNextFree uint64 // earliest cycle the DRAM channel accepts a new line
	// derate scales the DRAM channel's per-line service gap (> 1 =
	// degraded memory-port throughput, as injected by fault.DRAMDerate);
	// values at or below 1 mean nominal bandwidth.
	derate float64

	// streams is a small next-line stream-prefetcher table (line
	// addresses whose successor has been prefetched). Sequential misses
	// hit here and bypass the MSHRs at near-L2 latency; random misses
	// take the demand path.
	streams    [8]uint64
	streamNext int

	// mshrNext throttles per-cluster demand misses to the steady-state
	// rate a finite MSHR file sustains (MSHRs per MemLatency cycles).
	mshrNext [2]uint64
}

// SetMemDerate scales the DRAM channel's per-line service gap by f,
// modelling degraded memory-port throughput (a failing DIMM, thermal
// throttling, a noisy neighbour on the memory bus). f ≤ 1 restores nominal
// bandwidth. Takes effect from the next DRAM access.
func (h *Hierarchy) SetMemDerate(f float64) {
	h.derate = f
}

// NewHierarchy builds the data-side hierarchy for cfg.
func NewHierarchy(cfg *Config) *Hierarchy {
	h := &Hierarchy{
		L1D:  NewCache(cfg.L1D),
		L2:   NewCache(cfg.L2),
		DTLB: NewCache(cfg.DTLB),
		cfg:  cfg,
	}
	return h
}

// AccessData performs a data access at cycle now on cluster cl and
// returns its latency plus the event deltas to record. independent marks
// accesses whose operands were ready at dispatch: they form the burst of
// concurrent demand misses that a finite MSHR file throttles, while
// chain-dependent misses spread out in time on their own.
func (h *Hierarchy) AccessData(addr uint64, write bool, now uint64, cl uint8, independent bool, ev *Events) int {
	lat := h.cfg.L1DLatency
	if write {
		ev.Stores++
	} else {
		ev.Loads++
		ev.L1DReads++
	}
	if tlbHit, _ := h.DTLB.Access(addr, false); !tlbHit {
		ev.DTLBMisses++
		lat += 20 // page-walk cost
	}
	hit, _ := h.L1D.Access(addr, write)
	if hit {
		ev.L1DHits++
		return lat
	}
	ev.L1DMisses++
	lat = h.cfg.L2Latency
	l2hit, evict := h.L2.Access(addr, write)
	switch evict {
	case EvictClean:
		ev.L2SilentEvictions++
	case EvictDirty:
		ev.L2DirtyEvictions++
	}
	if l2hit {
		ev.L2Hits++
		return lat
	}
	ev.L2Misses++
	// DRAM: queue behind the channel when misses arrive faster than one
	// line per MemGap cycles (stretched by any active bandwidth derate).
	start := now
	if h.memNextFree > start {
		start = h.memNextFree
	}
	gap := uint64(h.cfg.MemGap)
	if h.derate > 1 {
		gap = uint64(float64(gap)*h.derate + 0.5)
	}
	h.memNextFree = start + gap

	line := addr >> 6
	if !h.cfg.DisablePrefetch && h.streamHit(line) {
		// The stream prefetcher already requested this line: the access
		// completes at near-L2 latency (or when the DRAM channel delivers
		// it, whichever is later), without holding an MSHR.
		ev.PrefetchFills++
		lat := int(start-now) + h.cfg.L2Latency
		return lat
	}
	// Demand miss: a cluster's finite MSHR file sustains at most MSHRs
	// outstanding misses, i.e. MSHRs/MemLatency misses per cycle. Phases
	// whose intrinsic memory parallelism exceeds the gated machine's half-
	// sized file lose throughput in low-power mode; chain-limited phases
	// never notice.
	if h.cfg.MSHRs > 0 && independent {
		gap := uint64((h.cfg.MemLatency + h.cfg.MSHRs - 1) / h.cfg.MSHRs)
		if h.mshrNext[cl] > start {
			start = h.mshrNext[cl]
		}
		h.mshrNext[cl] = start + gap
	}
	return int(start-now) + h.cfg.MemLatency
}

// streamHit checks (and trains) the next-line prefetcher: an access to
// line L hits if L-1 missed recently; either way L is recorded so the
// successor line is covered.
func (h *Hierarchy) streamHit(line uint64) bool {
	hit := false
	for i, l := range h.streams {
		if l == line-1 || l == line {
			h.streams[i] = line
			hit = l == line-1 || l == line
			return hit
		}
	}
	h.streams[h.streamNext] = line
	h.streamNext = (h.streamNext + 1) & 7
	return false
}
