package uarch

import (
	"fmt"
	"math/bits"
)

// CacheConfig describes a set-associative cache (or TLB, with LineBytes set
// to the page size).
type CacheConfig struct {
	SizeBytes int
	Ways      int
	LineBytes int
}

// Sets returns the number of sets implied by the geometry.
func (c CacheConfig) Sets() int {
	if c.Ways <= 0 || c.LineBytes <= 0 {
		panic(fmt.Sprintf("uarch: invalid cache config %+v", c))
	}
	sets := c.SizeBytes / (c.Ways * c.LineBytes)
	if sets < 1 {
		sets = 1
	}
	// Round down to a power of two for cheap indexing.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	return p
}

// EvictKind classifies what a cache access displaced.
type EvictKind uint8

const (
	EvictNone EvictKind = iota
	// EvictClean is a "silent" eviction: the line was not dirty, so no
	// writeback traffic was generated. The paper's counter 2 ("L2 Silent
	// Evictions") counts these at the L2.
	EvictClean
	EvictDirty
)

// tagValid and tagDirty are folded into every resident line's entry in
// Cache.tags, so the hit scan is a single masked word compare per way and
// the whole of a line's state — presence, identity, dirtiness — lives in
// the one word the scan already loaded; a probe touches no second array.
// A real tag can never collide with the bits: tags carry at most
// 64−lineBits−tagShift < 63 significant bits for any non-degenerate
// geometry (LineBytes ≥ 2 and Sets ≥ 2, as every shipped and tested
// geometry is).
const (
	tagValid uint64 = 1 << 63
	tagDirty uint64 = 1 << 62
)

// Cache is a set-associative cache with true LRU replacement and
// write-back, write-allocate semantics. Line state is held struct-of-arrays
// style in flat slices indexed arithmetically (set × ways + way), so the
// hit scan of an 8-way set reads one contiguous 64-byte run of tag words
// instead of chasing a per-set slice of 16-byte line structs.
type Cache struct {
	cfg      CacheConfig
	tags     []uint64 // tag | tagValid | tagDirty per resident way, 0 when invalid
	lru      []uint32 // last-touch tick per way
	fill     []uint8  // resident lines per set, saturating at ways
	ways     int
	setMask  uint64
	lineBits uint
	tagShift uint // significant bits in setMask, hoisted out of Access
	tick     uint32
}

// NewCache builds a cache from its geometry.
func NewCache(cfg CacheConfig) *Cache {
	nSets := cfg.Sets()
	c := &Cache{
		cfg:     cfg,
		tags:    make([]uint64, nSets*cfg.Ways),
		lru:     make([]uint32, nSets*cfg.Ways),
		fill:    make([]uint8, nSets),
		ways:    cfg.Ways,
		setMask: uint64(nSets - 1),
	}
	for b := cfg.LineBytes; b > 1; b >>= 1 {
		c.lineBits++
	}
	c.tagShift = uint(len64(c.setMask))
	return c
}

// Access looks up addr, allocating on miss. write marks the line dirty.
// It reports whether the access hit and what kind of line (if any) the
// allocation evicted.
func (c *Cache) Access(addr uint64, write bool) (hit bool, evicted EvictKind) {
	c.tick++
	lineAddr := addr >> c.lineBits
	set := int(lineAddr & c.setMask)
	base := set * c.ways
	tagV := lineAddr>>c.tagShift | tagValid

	// Hit scan: one word compare per way; validity is folded into the tag.
	// The shipped geometries are all 4- or 8-way, so those scans reduce to
	// a flat OR tree of per-way match bits over an array pointer with
	// compile-time bounds — no bounds checks and, unlike an early-exit
	// loop, no branch on the (data-random) hit way. Only the heavily
	// biased hit/miss decision itself branches.
	var m uint32
	switch c.ways {
	case 8:
		t := (*[8]uint64)(c.tags[base:])
		m = btag(t[0], tagV, 1) | btag(t[1], tagV, 2) |
			btag(t[2], tagV, 4) | btag(t[3], tagV, 8) |
			btag(t[4], tagV, 16) | btag(t[5], tagV, 32) |
			btag(t[6], tagV, 64) | btag(t[7], tagV, 128)
	case 4:
		t := (*[4]uint64)(c.tags[base:])
		m = btag(t[0], tagV, 1) | btag(t[1], tagV, 2) |
			btag(t[2], tagV, 4) | btag(t[3], tagV, 8)
	default:
		for i, t := range c.tags[base : base+c.ways] {
			if t&^tagDirty == tagV {
				m = 1 << i
				break
			}
		}
	}
	if m != 0 {
		w := base + bits.TrailingZeros32(m)
		c.lru[w] = c.tick
		// Unconditional read-modify-write of the tag word the scan already
		// pulled in: OR-ing zero for reads avoids a branch on the
		// trace-random load/store direction, and dirtiness lives in the tag
		// so no second array is touched.
		var dirty uint64
		if write {
			dirty = tagDirty
		}
		c.tags[w] |= dirty
		return true, EvictNone
	}

	// Miss: pick the victim exactly as the per-struct scan did — the last
	// invalid way if any exists, else the least recently used way. Sets
	// only ever fill (invalidation is whole-cache Reset), and the original
	// scan's "last invalid way wins" rule fills ways back to front, so
	// while the set holds f resident lines the victim is way ways−1−f —
	// no scan needed until the set is full.
	victim := 0
	if f := c.fill[set]; int(f) < c.ways {
		victim = c.ways - 1 - int(f)
		c.fill[set] = f + 1
	} else {
		// Full set: every way is valid, so only the LRU ticks matter.
		// Each (tick, way) pair packs into one word — tick in the high
		// bits, way index in the low bits — so a balanced min-reduction
		// tree of conditional moves finds the victim with a three-deep
		// dependency chain instead of a serial eight-long one. Ties on
		// the tick pick the lowest way, matching the original
		// first-minimum scan.
		switch c.ways {
		case 8:
			l := (*[8]uint32)(c.lru[base:])
			m := min(
				min(uint64(l[0])<<3|0, uint64(l[1])<<3|1),
				min(uint64(l[2])<<3|2, uint64(l[3])<<3|3),
			)
			m = min(m, min(
				min(uint64(l[4])<<3|4, uint64(l[5])<<3|5),
				min(uint64(l[6])<<3|6, uint64(l[7])<<3|7),
			))
			victim = int(m & 7)
		case 4:
			l := (*[4]uint32)(c.lru[base:])
			m := min(
				min(uint64(l[0])<<2|0, uint64(l[1])<<2|1),
				min(uint64(l[2])<<2|2, uint64(l[3])<<2|3),
			)
			victim = int(m & 3)
		default:
			var victimLRU uint32 = ^uint32(0)
			for i, l := range c.lru[base : base+c.ways] {
				if l < victimLRU {
					victim = i
					victimLRU = l
				}
			}
		}
	}

	v := base + victim
	if t := c.tags[v]; t != 0 {
		if t&tagDirty != 0 {
			evicted = EvictDirty
		} else {
			evicted = EvictClean
		}
	}
	nt := tagV
	if write {
		nt |= tagDirty
	}
	c.tags[v] = nt
	c.lru[v] = c.tick
	return false, evicted
}

// Reset invalidates the entire cache.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
	}
	for i := range c.fill {
		c.fill[i] = 0
	}
	c.tick = 0
}

// btag returns bit when t matches tagV ignoring the dirty bit, else 0; it
// compiles to an and-compare plus a conditional move, so the hit scan's OR
// tree carries no branches.
func btag(t, tagV uint64, bit uint32) uint32 {
	if t&^tagDirty == tagV {
		return bit
	}
	return 0
}

// len64 returns the number of significant bits in mask (mask is 2^k - 1).
func len64(mask uint64) int {
	n := 0
	for mask != 0 {
		n++
		mask >>= 1
	}
	return n
}

// Data-access classes produced by Hierarchy.classify and consumed by the
// timing pass (and by Hierarchy.timeData for the standalone AccessData
// path). The class captures everything about an access that depends on
// cache state; the queueing delays layered on top depend only on timing
// state, which is what lets the hot loop split classification from timing.
const (
	memNone   uint8 = iota // not a memory access
	memL1                  // L1D hit
	memL1TLB               // L1D hit that also walked the DTLB
	memL2                  // L1D miss, L2 hit
	memPF                  // L2 miss covered by the stream prefetcher
	memDemand              // demand miss to DRAM
)

// classify's return byte carries the class in the low three bits plus the
// event-relevant side conditions: a DTLB miss (which can accompany any
// class; only the L1-hit case gets its own class) and what kind of line
// the L2 allocation displaced. Keeping events out of classify lets the
// probe pass histogram the bytes and credit all event counters once per
// chunk instead of once per access.
const (
	clsTLBMiss    uint8 = 1 << 3
	clsEvictShift       = 4 // EvictKind in bits 4-5
)

// accumClassEvents credits every event counter implied by n accesses that
// classified identically: the per-direction base counts, the TLB walk, the
// cache-level hit/miss ladder, and any L2 eviction traffic. It is the one
// place the classify byte is decoded, shared by the per-access AccessData
// path and the batched probe-pass histogram.
func accumClassEvents(write bool, r uint8, n uint64, ev *Events) {
	if write {
		ev.Stores += n
	} else {
		ev.Loads += n
		ev.L1DReads += n
	}
	if r&clsTLBMiss != 0 {
		ev.DTLBMisses += n
	}
	switch EvictKind(r >> clsEvictShift & 3) {
	case EvictClean:
		ev.L2SilentEvictions += n
	case EvictDirty:
		ev.L2DirtyEvictions += n
	}
	switch r & infoClassMask {
	case memL1, memL1TLB:
		ev.L1DHits += n
	case memL2:
		ev.L1DMisses += n
		ev.L2Hits += n
	case memPF:
		ev.L1DMisses += n
		ev.L2Misses += n
		ev.PrefetchFills += n
	case memDemand:
		ev.L1DMisses += n
		ev.L2Misses += n
	}
}

// Hierarchy bundles the data-side cache levels and TLB and resolves a load
// or store to a latency, updating hit/miss/eviction statistics. It also
// enforces off-chip memory bandwidth: misses to DRAM are serviced at most
// one line per Config.MemGap cycles, which is what makes streaming
// workloads equally slow in both cluster configurations (and therefore
// gateable), as on real hardware.
type Hierarchy struct {
	L1D  *Cache
	L2   *Cache
	DTLB *Cache
	cfg  *Config

	memNextFree uint64 // earliest cycle the DRAM channel accepts a new line
	// derate scales the DRAM channel's per-line service gap (> 1 =
	// degraded memory-port throughput, as injected by fault.DRAMDerate);
	// values at or below 1 mean nominal bandwidth.
	derate float64
	// gap is the effective per-line DRAM service spacing: MemGap stretched
	// by any active derate. Recomputed at SetMemDerate time so the hot
	// loop never touches floating point.
	gap uint64
	// mshrGap is the per-miss spacing a finite MSHR file sustains
	// (MemLatency/MSHRs, rounded up); zero when MSHRs are unmodelled.
	mshrGap uint64

	// streams is a small next-line stream-prefetcher table (line
	// addresses whose successor has been prefetched). Sequential misses
	// hit here and bypass the MSHRs at near-L2 latency; random misses
	// take the demand path.
	streams    [8]uint64
	streamNext int

	// mshrNext throttles per-cluster demand misses to the steady-state
	// rate a finite MSHR file sustains (MSHRs per MemLatency cycles).
	mshrNext [2]uint64
}

// SetMemDerate scales the DRAM channel's per-line service gap by f,
// modelling degraded memory-port throughput (a failing DIMM, thermal
// throttling, a noisy neighbour on the memory bus). f ≤ 1 restores nominal
// bandwidth. Takes effect from the next DRAM access.
func (h *Hierarchy) SetMemDerate(f float64) {
	h.derate = f
	h.gap = uint64(h.cfg.MemGap)
	if f > 1 {
		h.gap = uint64(float64(h.cfg.MemGap)*f + 0.5)
	}
}

// NewHierarchy builds the data-side hierarchy for cfg.
func NewHierarchy(cfg *Config) *Hierarchy {
	h := &Hierarchy{
		L1D:  NewCache(cfg.L1D),
		L2:   NewCache(cfg.L2),
		DTLB: NewCache(cfg.DTLB),
		cfg:  cfg,
		gap:  uint64(cfg.MemGap),
	}
	if cfg.MSHRs > 0 {
		h.mshrGap = uint64((cfg.MemLatency + cfg.MSHRs - 1) / cfg.MSHRs)
	}
	return h
}

// classify walks the DTLB, L1D, L2, and stream-prefetcher state for one
// access in program order and returns its classify byte (class plus side
// conditions — see clsTLBMiss). It performs every cache-state mutation of
// the access but no timing and no event accounting: the class plus the
// caller's clock fully determine the latency, and the returned byte fully
// determines the event deltas (accumClassEvents).
func (h *Hierarchy) classify(addr uint64, write bool) uint8 {
	var r uint8
	if hit, _ := h.DTLB.Access(addr, false); !hit {
		r = clsTLBMiss
	}
	if hit, _ := h.L1D.Access(addr, write); hit {
		if r != 0 {
			return memL1TLB | r
		}
		return memL1
	}
	l2hit, evict := h.L2.Access(addr, write)
	r |= uint8(evict) << clsEvictShift
	if l2hit {
		return memL2 | r
	}
	if !h.cfg.DisablePrefetch && h.streamHit(addr>>6) {
		return memPF | r
	}
	return memDemand | r
}

// timeData resolves a classified access to its latency at cycle now on
// cluster cl, advancing the DRAM-channel and MSHR clocks. independent
// marks accesses whose operands were ready at dispatch: they form the
// burst of concurrent demand misses that a finite MSHR file throttles,
// while chain-dependent misses spread out in time on their own. The hot
// loop inlines this arithmetic over batch-local copies of the clocks; the
// two must stay in lockstep.
func (h *Hierarchy) timeData(class uint8, now uint64, cl uint8, independent bool) int {
	switch class {
	case memL1:
		return h.cfg.L1DLatency
	case memL1TLB:
		return h.cfg.L1DLatency + 20 // page-walk cost
	case memL2:
		return h.cfg.L2Latency
	}
	// DRAM: queue behind the channel when misses arrive faster than one
	// line per MemGap cycles (stretched by any active bandwidth derate).
	start := now
	if h.memNextFree > start {
		start = h.memNextFree
	}
	h.memNextFree = start + h.gap
	if class == memPF {
		// The stream prefetcher already requested this line: the access
		// completes at near-L2 latency (or when the DRAM channel delivers
		// it, whichever is later), without holding an MSHR.
		return int(start-now) + h.cfg.L2Latency
	}
	// Demand miss: a cluster's finite MSHR file sustains at most MSHRs
	// outstanding misses, i.e. MSHRs/MemLatency misses per cycle. Phases
	// whose intrinsic memory parallelism exceeds the gated machine's half-
	// sized file lose throughput in low-power mode; chain-limited phases
	// never notice.
	if h.mshrGap > 0 && independent {
		if h.mshrNext[cl] > start {
			start = h.mshrNext[cl]
		}
		h.mshrNext[cl] = start + h.mshrGap
	}
	return int(start-now) + h.cfg.MemLatency
}

// AccessData performs a data access at cycle now on cluster cl and
// returns its latency, recording event deltas into ev. It composes
// classify (cache-state walk) with timeData (queueing); Core's batch
// kernel runs the same two halves in separate passes.
func (h *Hierarchy) AccessData(addr uint64, write bool, now uint64, cl uint8, independent bool, ev *Events) int {
	r := h.classify(addr, write)
	accumClassEvents(write, r, 1, ev)
	return h.timeData(r&infoClassMask, now, cl, independent)
}

// streamHit checks (and trains) the next-line prefetcher: an access to
// line L hits if L-1 missed recently; either way L is recorded so the
// successor line is covered.
func (h *Hierarchy) streamHit(line uint64) bool {
	hit := false
	for i, l := range h.streams {
		if l == line-1 || l == line {
			h.streams[i] = line
			hit = l == line-1 || l == line
			return hit
		}
	}
	h.streams[h.streamNext] = line
	h.streamNext = (h.streamNext + 1) & 7
	return false
}
