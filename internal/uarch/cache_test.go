package uarch

import "testing"

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1 << 10, Ways: 2, LineBytes: 64})
	if hit, _ := c.Access(0x1000, false); hit {
		t.Error("cold cache reported a hit")
	}
	if hit, _ := c.Access(0x1000, false); !hit {
		t.Error("second access to same line missed")
	}
	// Same line, different byte.
	if hit, _ := c.Access(0x103F, false); !hit {
		t.Error("access within same line missed")
	}
	// Next line misses.
	if hit, _ := c.Access(0x1040, false); hit {
		t.Error("different line hit unexpectedly")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 64B lines, 2 sets (256B total).
	cfg := CacheConfig{SizeBytes: 256, Ways: 2, LineBytes: 64}
	c := NewCache(cfg)
	if cfg.Sets() != 2 {
		t.Fatalf("sets = %d, want 2", cfg.Sets())
	}
	// Three distinct lines mapping to set 0: line addresses 0, 2, 4
	// (set index = lineAddr & 1).
	c.Access(0*64, false)
	c.Access(2*64, false)
	c.Access(0*64, false) // touch line 0, making line 2 LRU
	c.Access(4*64, false) // evicts line 2
	if hit, _ := c.Access(0*64, false); !hit {
		t.Error("recently used line evicted; LRU broken")
	}
	if hit, _ := c.Access(2*64, false); hit {
		t.Error("LRU victim still present")
	}
}

func TestCacheDirtyEviction(t *testing.T) {
	cfg := CacheConfig{SizeBytes: 128, Ways: 1, LineBytes: 64}
	c := NewCache(cfg)
	c.Access(0, true) // dirty line in set 0
	_, ev := c.Access(128, false)
	if ev != EvictDirty {
		t.Errorf("evict kind = %v, want EvictDirty", ev)
	}
	c.Access(64, false) // clean line in set 1
	_, ev = c.Access(192, false)
	if ev != EvictClean {
		t.Errorf("evict kind = %v, want EvictClean (silent)", ev)
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1 << 10, Ways: 2, LineBytes: 64})
	c.Access(0x40, false)
	c.Reset()
	if hit, _ := c.Access(0x40, false); hit {
		t.Error("hit after Reset")
	}
}

func TestCacheSetsRounding(t *testing.T) {
	// 48KB 12-way would give 64 sets; 50KB 12-way gives a non-power-of-two
	// raw count that must round down.
	cfg := CacheConfig{SizeBytes: 50 << 10, Ways: 12, LineBytes: 64}
	sets := cfg.Sets()
	if sets&(sets-1) != 0 {
		t.Errorf("sets = %d, not a power of two", sets)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(&cfg)
	var ev Events

	// First access: DTLB miss + L1 miss + L2 miss → memory latency + walk.
	lat := h.AccessData(0x100000, false, 0, 0, true, &ev)
	if lat != cfg.MemLatency {
		t.Errorf("cold load latency = %d, want %d", lat, cfg.MemLatency)
	}
	if ev.DTLBMisses != 1 || ev.L1DMisses != 1 || ev.L2Misses != 1 {
		t.Errorf("cold access events = %+v", ev)
	}

	// Second access: everything hits.
	lat = h.AccessData(0x100000, false, 0, 0, true, &ev)
	if lat != cfg.L1DLatency {
		t.Errorf("warm load latency = %d, want %d", lat, cfg.L1DLatency)
	}
	if ev.L1DHits != 1 {
		t.Errorf("L1DHits = %d, want 1", ev.L1DHits)
	}
	if ev.Loads != 2 || ev.L1DReads != 2 {
		t.Errorf("loads = %d reads = %d, want 2/2", ev.Loads, ev.L1DReads)
	}

	// A store counts as a store, not a load.
	h.AccessData(0x100040, true, 0, 0, false, &ev)
	if ev.Stores != 1 {
		t.Errorf("Stores = %d, want 1", ev.Stores)
	}
}

func TestHierarchyL2HitLatency(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(&cfg)
	var ev Events
	h.AccessData(0x200000, false, 0, 0, true, &ev) // install in L1+L2
	// Evict from tiny L1 by touching many lines in the same set region.
	for i := uint64(1); i <= 1024; i++ {
		h.AccessData(0x200000+i*uint64(cfg.L1D.SizeBytes/4), false, 0, 0, true, &ev)
	}
	ev = Events{}
	lat := h.AccessData(0x200000, false, 0, 0, true, &ev)
	if ev.L1DMisses != 1 {
		t.Skip("line still resident in L1; geometry-dependent")
	}
	if ev.L2Hits == 1 && lat != cfg.L2Latency {
		t.Errorf("L2 hit latency = %d, want %d", lat, cfg.L2Latency)
	}
}

func TestPredictorLearnsBias(t *testing.T) {
	p := NewPredictor()
	pc := uint64(0x4000)
	misses := 0
	for i := 0; i < 1000; i++ {
		if p.PredictAndUpdate(pc, true) {
			misses++
		}
	}
	if misses > 40 {
		t.Errorf("%d mispredicts on an always-taken branch", misses)
	}
}

func TestPredictorAlternatingPattern(t *testing.T) {
	p := NewPredictor()
	pc := uint64(0x4000)
	misses := 0
	for i := 0; i < 2000; i++ {
		if p.PredictAndUpdate(pc, i%2 == 0) && i > 200 {
			misses++
		}
	}
	// gshare should capture a period-2 pattern via history.
	if misses > 20 {
		t.Errorf("%d mispredicts on alternating branch after warmup", misses)
	}
}

func TestPredictorReset(t *testing.T) {
	p := NewPredictor()
	for i := 0; i < 100; i++ {
		p.PredictAndUpdate(0x40, true)
	}
	p.Reset()
	if p.history != 0 {
		t.Error("history not cleared")
	}
	for _, v := range p.bimodal {
		if v != 1 {
			t.Fatal("bimodal table not reinitialised")
		}
	}
	for _, v := range p.chooser {
		if v != 0 {
			t.Fatal("chooser table not cleared")
		}
	}
}
