package uarch

import (
	"clustergate/internal/obs"
	"clustergate/internal/trace"
)

// Simulation throughput observability: instructions executed and
// retirement cycles advanced, summed over every Core in the process. One
// atomic add per Execute batch (typically 10k instructions), so the cost
// is invisible next to the timing model itself.
var (
	instrsSimulated = obs.NewCounter("uarch.instructions")
	cyclesSimulated = obs.NewCounter("uarch.cycles")
)

const (
	// depWindow bounds how far back register dependencies reach; it must
	// cover trace generation's maximum dependency distance (512).
	depWindow = 1024
	// slotWindow is the cycle-ring span for issue-port bookkeeping. Stamped
	// entries make clearing unnecessary; the window just needs to exceed
	// the largest fetch-to-issue spread (ROB × memory latency).
	slotWindow = 1 << 16
	// fetchBlock is the instruction granularity of I-side cache probes.
	fetchBlock = 16
	// sqDrainDelay is how long a store occupies its queue slot after
	// completing, modelling post-retirement writeback.
	sqDrainDelay = 4
	// avgRegTransfers is the typical number of live registers copied when
	// gating Cluster 2 (worst case is Config.MaxRegTransfers).
	avgRegTransfers = 24
)

// cycleSlot tracks per-cycle port usage; the stamp identifies which cycle
// currently owns the entry, so stale data is discarded without sweeps.
type cycleSlot struct {
	stamp  uint64
	issued [2]uint8
	loads  [2]uint8
	stores [2]uint8
}

// Core is the cycle-level model of the dual-cluster CPU. One Core instance
// simulates one hardware context; create separate Cores to compare modes on
// the same trace.
type Core struct {
	cfg  Config
	mode Mode

	hier     *Hierarchy
	icache   *Cache
	uopCache *Cache
	itlb     *Cache
	bp       *Predictor

	ev Events

	// Timing state.
	fc          uint64 // current fetch cycle
	fetchedInFC int    // instructions already fetched in cycle fc
	redirect    uint64 // earliest fetch cycle after a pending mispredict
	retireMax   uint64 // highest completion cycle seen (the clock)

	idx          uint64      // global dynamic instruction index
	comp         []uint64    // completion cycle ring, indexed by idx
	cluster      []uint8     // cluster assignment ring, indexed by idx
	slots        []cycleSlot // per-cycle port usage ring
	steer        uint8       // round-robin steering toggle
	divFree      [2]uint64   // next cycle each cluster's divider is free
	sqDrain      [2][]uint64 // per-cluster store-queue drain-cycle rings
	sqCount      [2]uint64   // per-cluster store counters
	lqComp       [2][]uint64 // per-cluster load-queue completion rings
	lqCount      [2]uint64   // per-cluster load counters
	lastBlock    uint64      // last fetch block probed on the I-side
	legacyDecode bool        // current block missed the µop cache
}

// NewCore returns a core in high-performance mode.
func NewCore(cfg Config) *Core { return NewCoreInMode(cfg, ModeHighPerf) }

// NewCoreInMode returns a core pinned to an initial mode.
func NewCoreInMode(cfg Config, m Mode) *Core {
	c := &Core{
		cfg:      cfg,
		mode:     m,
		hier:     NewHierarchy(&cfg),
		icache:   NewCache(cfg.L1I),
		uopCache: NewCache(cfg.UopCache),
		itlb:     NewCache(cfg.ITLB),
		bp:       NewPredictor(),
		comp:     make([]uint64, depWindow),
		cluster:  make([]uint8, depWindow),
		slots:    make([]cycleSlot, slotWindow),
	}
	c.sqDrain[0] = make([]uint64, 64)
	c.sqDrain[1] = make([]uint64, 64)
	c.lqComp[0] = make([]uint64, 128)
	c.lqComp[1] = make([]uint64, 128)
	c.lastBlock = ^uint64(0)
	return c
}

// Mode returns the active cluster configuration.
func (c *Core) Mode() Mode { return c.mode }

// SetMemDerate scales the core's DRAM service gap by f (≤ 1 = nominal),
// the uarch-level injection point for DRAM-bandwidth degradation faults:
// unlike telemetry-class faults, a derate slows real execution, so IPC and
// every derived counter genuinely drop.
func (c *Core) SetMemDerate(f float64) { c.hier.SetMemDerate(f) }

// Cycles returns the core's retirement clock.
func (c *Core) Cycles() uint64 { return c.retireMax }

// Events returns a snapshot of cumulative event counts. StallCycles is
// derived at snapshot time as cycles minus busy cycles.
func (c *Core) Events() Events {
	ev := c.ev
	ev.Cycles = c.retireMax
	if ev.Cycles > ev.BusyCycles {
		ev.StallCycles = ev.Cycles - ev.BusyCycles
	}
	return ev
}

// SetMode performs the cluster-gating microcode flow (Section 3). Gating
// Cluster 2 copies live register state to Cluster 1, one µop per register,
// while execution continues; ungating is nearly free.
func (c *Core) SetMode(m Mode) {
	if m == c.mode {
		return
	}
	c.ev.ModeSwitches++
	if m == ModeLowPower {
		uops := avgRegTransfers
		if uops > c.cfg.MaxRegTransfers {
			uops = c.cfg.MaxRegTransfers
		}
		cost := uint64(uops/c.cfg.ClusterIssueWidth + 4)
		c.ev.RegTransferUops += uint64(uops)
		c.ev.SwitchCycles += cost
		c.fc += cost
	} else {
		c.ev.SwitchCycles += 2
		c.fc += 2
	}
	c.mode = m
}

// Execute runs a batch of instructions through the timing model.
func (c *Core) Execute(batch []trace.Instruction) {
	before := c.retireMax
	for i := range batch {
		c.step(&batch[i])
	}
	instrsSimulated.Add(int64(len(batch)))
	cyclesSimulated.Add(int64(c.retireMax - before))
}

func (c *Core) step(in *trace.Instruction) {
	cfg := &c.cfg
	width := cfg.fetchWidth(c.mode)
	c.probeISide(in.PC)
	if c.legacyDecode && width > 4 {
		// µop-cache misses fall back to the legacy decode pipe, which
		// sustains at most 4 instructions per cycle.
		width = 4
	}

	// --- Fetch: width, redirects, ROB occupancy, I-side misses.
	if c.fetchedInFC >= width {
		c.fc++
		c.fetchedInFC = 0
	}
	if c.redirect > c.fc {
		c.fc = c.redirect
		c.fetchedInFC = 0
	}
	// Speculation window: instruction i cannot be fetched until i-ROB
	// completes; gating halves the effective window.
	rob := uint64(cfg.robSize(c.mode))
	if c.idx >= rob {
		if free := c.comp[(c.idx-rob)&(depWindow-1)]; free > c.fc {
			c.fc = free
			c.fetchedInFC = 0
		}
	}
	c.fetchedInFC++

	dispatch := c.fc + uint64(cfg.DecodeDepth)

	// --- Steering and operand readiness.
	cl := c.steerCluster(in)
	ready := dispatch
	depReady := uint64(0)
	if in.Dep1 > 0 {
		depReady = c.depReady(uint64(in.Dep1), cl)
		c.ev.PhysRegRefs++
	}
	if in.Dep2 > 0 {
		if r := c.depReady(uint64(in.Dep2), cl); r > depReady {
			depReady = r
		}
		c.ev.PhysRegRefs++
	}
	if depReady > ready {
		ready = depReady
		c.ev.UopsStalledOnDep++
	} else {
		c.ev.UopsReady++
	}

	// --- Memory side: latency and store-queue pressure. Bandwidth and
	// MSHR throttling are keyed on the monotone fetch clock: the shared
	// channels see the window's aggregate demand stream in order.
	lat := 1
	isLoad, isStore := false, false
	switch in.Op {
	case trace.OpLoad:
		isLoad = true
		lat = c.hier.AccessData(in.Addr, false, c.fc, cl, ready <= dispatch, &c.ev)
		ready = c.reserveLoadSlot(cl, ready)
	case trace.OpStore:
		isStore = true
		c.hier.AccessData(in.Addr, true, c.fc, cl, false, &c.ev)
		lat = 1
		ready = c.reserveStoreSlot(cl, ready)
	case trace.OpMul:
		lat = 3
		c.ev.MulOps++
	case trace.OpFPAdd, trace.OpFPMul:
		lat = 4
		c.ev.FPOps++
	case trace.OpDiv, trace.OpFPDiv:
		lat = cfg.DivLatency
		c.ev.DivOps++
		if in.Op == trace.OpFPDiv {
			c.ev.FPOps++
		}
		if c.divFree[cl] > ready {
			ready = c.divFree[cl]
		}
	}

	// --- Issue: first cycle ≥ ready with a free port on this cluster.
	issue := c.findIssueCycle(cl, ready, isLoad, isStore)
	c.ev.ReadyWaitCycles += issue - ready
	if cl == 0 {
		c.ev.IssueC0++
	} else {
		c.ev.IssueC1++
	}
	if in.Op == trace.OpDiv || in.Op == trace.OpFPDiv {
		// Non-pipelined divider blocks the cluster's divide port.
		c.divFree[cl] = issue + uint64(cfg.DivLatency)
	}

	complete := issue + uint64(lat)
	c.comp[c.idx&(depWindow-1)] = complete
	c.cluster[c.idx&(depWindow-1)] = cl
	if complete > c.retireMax {
		c.retireMax = complete
	}
	if isStore {
		c.recordStoreDrain(cl, complete)
	}
	if isLoad {
		n := c.lqCount[cl]
		c.lqComp[cl][n&127] = complete
		c.lqCount[cl] = n + 1
	}

	// --- Branch resolution.
	if in.Op == trace.OpBranch {
		c.ev.Branches++
		if in.Taken {
			c.ev.TakenBranches++
		}
		if c.bp.PredictAndUpdate(in.PC, in.Taken) {
			c.ev.Mispredicts++
			r := complete + uint64(cfg.MispredictPenalty)
			if r > c.redirect {
				// Wrong-path fetch between now and resolution is flushed.
				flushed := (complete - c.fc) * uint64(width)
				if flushed > uint64(cfg.ROBSize) {
					flushed = uint64(cfg.ROBSize)
				}
				c.ev.WrongPathUops += flushed
				c.ev.RedirectCycles += r - c.fc
				c.redirect = r
			}
		}
	}

	c.ev.Instrs++
	c.idx++
}

// probeISide models the micro-op cache, instruction cache, and ITLB once
// per fetch block, charging front-end bubbles on misses.
func (c *Core) probeISide(pc uint64) {
	block := pc / (fetchBlock * 4)
	if block == c.lastBlock {
		return
	}
	c.lastBlock = block

	var bubble uint64
	if hit, _ := c.itlb.Access(pc, false); !hit {
		c.ev.ITLBMisses++
		bubble += 20
	}
	if hit, _ := c.uopCache.Access(pc, false); hit {
		c.ev.UopCacheHits++
		c.legacyDecode = false
	} else {
		c.ev.UopCacheMisses++
		c.legacyDecode = true
		if l1hit, _ := c.icache.Access(pc, false); l1hit {
			c.ev.L1IHits++
		} else {
			c.ev.L1IMisses++
			if l2hit, _ := c.hier.L2.Access(pc, false); l2hit {
				bubble += uint64(c.cfg.L2Latency)
			} else {
				bubble += uint64(c.cfg.MemLatency) / 2
			}
		}
	}
	if bubble > 0 {
		c.fc += bubble
		c.fetchedInFC = 0
		c.ev.FetchBubbles += bubble
	}
}

// steerCluster picks the execution cluster for an instruction. Short
// dependency chains follow their producer (avoiding forwarding latency);
// independent work alternates clusters to balance load. In low-power mode
// everything runs on Cluster 1 (index 0).
func (c *Core) steerCluster(in *trace.Instruction) uint8 {
	if clusters(c.mode) == 1 {
		return 0
	}
	if in.Dep1 > 0 && in.Dep1 <= 3 && uint64(in.Dep1) <= c.idx {
		return c.cluster[(c.idx-uint64(in.Dep1))&(depWindow-1)]
	}
	c.steer ^= 1
	return c.steer
}

// depReady returns when the value produced dist instructions ago becomes
// usable on cluster cl, including the inter-cluster forwarding penalty.
func (c *Core) depReady(dist uint64, cl uint8) uint64 {
	if dist > c.idx {
		return 0
	}
	i := (c.idx - dist) & (depWindow - 1)
	r := c.comp[i]
	if c.cluster[i] != cl && clusters(c.mode) > 1 {
		r += uint64(c.cfg.InterClusterDelay)
		c.ev.CrossForwards++
	}
	return r
}

// findIssueCycle locates the first cycle at or after earliest with free
// issue bandwidth (and a free load/store port when needed) on cluster cl.
func (c *Core) findIssueCycle(cl uint8, earliest uint64, isLoad, isStore bool) uint64 {
	cfg := &c.cfg
	for t := earliest; ; t++ {
		s := &c.slots[t&(slotWindow-1)]
		if s.stamp != t {
			*s = cycleSlot{stamp: t}
		}
		if int(s.issued[cl]) >= cfg.ClusterIssueWidth {
			continue
		}
		if isLoad && int(s.loads[cl]) >= cfg.LoadPorts {
			continue
		}
		if isStore && int(s.stores[cl]) >= cfg.StorePorts {
			continue
		}
		if s.issued[0] == 0 && s.issued[1] == 0 {
			c.ev.BusyCycles++
		}
		s.issued[cl]++
		if isLoad {
			s.loads[cl]++
		}
		if isStore {
			s.stores[cl]++
		}
		return t
	}
}

// reserveStoreSlot delays a store until its cluster's store queue has a
// free entry and records occupancy telemetry.
func (c *Core) reserveStoreSlot(cl uint8, ready uint64) uint64 {
	sq := uint64(c.cfg.StoreQueue)
	ring := c.sqDrain[cl]
	n := c.sqCount[cl]
	if n >= sq {
		if drain := ring[(n-sq)&63]; drain > ready {
			c.ev.SQStallCycles += drain - ready
			ready = drain
		}
	}
	// Occupancy snapshot: how many of the previous SQ stores are still in
	// flight at this store's ready cycle.
	occ := uint64(0)
	scan := sq
	if n < scan {
		scan = n
	}
	for k := uint64(1); k <= scan; k++ {
		if ring[(n-k)&63] > ready {
			occ++
		}
	}
	c.ev.SQOccupancySum += occ
	return ready
}

// reserveLoadSlot delays a load until its cluster's load queue has a free
// entry; gated operation halves the machine's aggregate load queue.
func (c *Core) reserveLoadSlot(cl uint8, ready uint64) uint64 {
	lq := uint64(c.cfg.LoadQueue)
	if lq == 0 || lq > 128 {
		return ready
	}
	n := c.lqCount[cl]
	if n >= lq {
		if free := c.lqComp[cl][(n-lq)&127]; free > ready {
			ready = free
		}
	}
	return ready
}

func (c *Core) recordStoreDrain(cl uint8, complete uint64) {
	n := c.sqCount[cl]
	c.sqDrain[cl][n&63] = complete + sqDrainDelay
	c.sqCount[cl] = n + 1
}
