package uarch

import (
	"time"

	"clustergate/internal/obs"
	"clustergate/internal/trace"
)

// Simulation throughput observability: instructions executed and
// retirement cycles advanced, summed over every Core in the process, plus
// a wall-latency histogram per Execute batch (one batch ≈ one telemetry
// interval, a few chunks). Two atomic adds and two clock reads per batch
// (typically 10k instructions), so the cost is invisible next to the
// timing model itself.
var (
	instrsSimulated = obs.NewCounter("uarch.instructions")
	cyclesSimulated = obs.NewCounter("uarch.cycles")
	executeLatency  = obs.NewHistogram("uarch.execute.batch")
)

const (
	// depWindow bounds how far back register dependencies reach; it must
	// cover trace generation's maximum dependency distance (512).
	depWindow = 1024
	// slotWindow is the cycle-ring span for issue-port bookkeeping. Stamped
	// entries make clearing unnecessary; the window just needs to exceed
	// the largest fetch-to-issue spread (ROB × memory latency).
	slotWindow = 1 << 16
	// fetchBlock is the instruction granularity of I-side cache probes.
	fetchBlock = 16
	// sqDrainDelay is how long a store occupies its queue slot after
	// completing, modelling post-retirement writeback.
	sqDrainDelay = 4
	// avgRegTransfers is the typical number of live registers copied when
	// gating Cluster 2 (worst case is Config.MaxRegTransfers).
	avgRegTransfers = 24
	// sqRingLen and lqRingLen are the store/load completion-ring sizes;
	// both are powers of two so ring indices reduce to a mask.
	sqRingLen = 64
	lqRingLen = 128
)

// Per-cycle port usage packs into one word per slot-ring entry:
//
//	[ epoch (44 bits) | stores1 stores0 (3+3) | loads1 loads0 (3+3) | issued1 issued0 (4+4) ]
//
// The epoch is the cycle number divided by slotWindow, so (epoch, ring
// index) identifies the owning cycle exactly and stale entries are
// discarded without sweeps. One 8-byte load answers every port question
// for a probe, and claiming a fresh cycle is a single 8-byte store. The
// count fields never overflow: each saturates at its configured budget
// (issue width ≤ 15, load/store ports ≤ 7) before another increment can
// happen. Virgin entries hold slotVirgin, an epoch no simulation reaches,
// so a never-touched slot can't masquerade as cycle 0 of epoch 0.
const (
	slotIssuedShift = 0  // + 4·cluster
	slotLoadsShift  = 8  // + 3·cluster
	slotStoresShift = 14 // + 3·cluster
	slotEpochShift  = 20
	slotVirgin      = ^uint64(0)
)

// modeParams holds the mode-derived constants of the timing pass,
// recomputed once per SetMode instead of per instruction.
type modeParams struct {
	// widths[0] is the front-end width in this mode, widths[1] the width
	// when the block decodes through the legacy pipe; indexing by the
	// legacy bit keeps the per-instruction width selection branch-free.
	widths [2]int
	rob    uint64 // speculation window
	single bool   // one active cluster (steer everything to cluster 0)
}

// coreConsts holds the config-derived constants of the timing pass,
// computed once at construction.
type coreConsts struct {
	decodeDepth uint64
	icDelay     uint64 // inter-cluster forwarding penalty
	mispen      uint64 // mispredict redirect cost
	divLat      uint64
	robCap      uint64 // wrong-path flush cap (shared ROB size)
	issueWidth  int    // per-cluster scheduler width
	loadPorts   int
	storePorts  int
	sq          uint64 // store-queue depth
	lq          uint64 // load-queue depth
	lqOn        bool   // load queue modelled (0 < lq ≤ ring size)
	l1dLat      uint64
	l2Lat       uint64
	memLat      uint64
	mshrOn      bool
	// memClassLat resolves the cache-resident access classes (memL1,
	// memL1TLB, memL2) to their fixed latencies so the load path only
	// branches on the single "reaches DRAM" condition.
	memClassLat [4]uint64
}

// bumpTab maps (cluster, port kind) to the packed-slot increment word for
// one issued instruction: the issued-count bump plus the load- or
// store-port bump when the low two flag bits say so. Indexing by
// flags&3 (0 = neither, 1 = load, 2 = store) keeps the issue-loop setup
// free of data-dependent branches.
var bumpTab = func() (t [2][4]uint64) {
	for ci := 0; ci < 2; ci++ {
		base := uint64(1) << (slotIssuedShift + ci*4)
		t[ci][0] = base
		t[ci][1] = base | uint64(1)<<(slotLoadsShift+ci*3)
		t[ci][2] = base | uint64(1)<<(slotStoresShift+ci*3)
		t[ci][3] = base
	}
	return
}()

// Core is the cycle-level model of the dual-cluster CPU. One Core instance
// simulates one hardware context; create separate Cores to compare modes on
// the same trace.
type Core struct {
	cfg  Config
	mode Mode

	hier     *Hierarchy
	icache   *Cache
	uopCache *Cache
	itlb     *Cache
	bp       *Predictor

	ev Events

	// Timing state.
	fc          uint64 // current fetch cycle
	fetchedInFC int    // instructions already fetched in cycle fc
	redirect    uint64 // earliest fetch cycle after a pending mispredict
	retireMax   uint64 // highest completion cycle seen (the clock)

	// The rings are fixed-size arrays rather than slices so every masked
	// index is provably in bounds: the compiler drops all bounds checks
	// from the timing loop.
	idx          uint64               // global dynamic instruction index
	comp         [depWindow]uint64    // completion cycle ring, indexed by idx
	cluster      [depWindow]uint8     // cluster assignment ring, indexed by idx
	slots        [slotWindow]uint64   // per-cycle packed port-usage ring
	steer        uint8                // round-robin steering toggle
	divFree      [2]uint64            // next cycle each cluster's divider is free
	sqDrain      [2][sqRingLen]uint64 // per-cluster store-queue drain-cycle rings
	sqCount      [2]uint64            // per-cluster store counters
	lqComp       [2][lqRingLen]uint64 // per-cluster load-queue completion rings
	lqCount      [2]uint64            // per-cluster load counters
	lastBlock    uint64               // last fetch block probed on the I-side
	legacyDecode bool                 // current block missed the µop cache

	// Hoisted constants and per-batch scratch.
	mp      modeParams
	cc      coreConsts
	opLUT   [256]uint32
	scratch execScratch

	// probeDone signals completion of this core's in-flight probe-pass job
	// on the shared probe pool (see pipeline.go). At most one job per core
	// is ever outstanding, so capacity 1 means neither side blocks.
	probeDone chan struct{}
}

// NewCore returns a core in high-performance mode.
func NewCore(cfg Config) *Core { return NewCoreInMode(cfg, ModeHighPerf) }

// NewCoreInMode returns a core pinned to an initial mode.
func NewCoreInMode(cfg Config, m Mode) *Core {
	c := &Core{
		cfg:       cfg,
		mode:      m,
		icache:    NewCache(cfg.L1I),
		uopCache:  NewCache(cfg.UopCache),
		itlb:      NewCache(cfg.ITLB),
		bp:        NewPredictor(),
		probeDone: make(chan struct{}, 1),
	}
	c.hier = NewHierarchy(&c.cfg)
	c.lastBlock = ^uint64(0)
	for i := range c.slots {
		c.slots[i] = slotVirgin
	}
	c.opLUT = buildOpLUT(&c.cfg)
	c.cc = coreConsts{
		decodeDepth: uint64(cfg.DecodeDepth),
		icDelay:     uint64(cfg.InterClusterDelay),
		mispen:      uint64(cfg.MispredictPenalty),
		divLat:      uint64(cfg.DivLatency),
		robCap:      uint64(cfg.ROBSize),
		issueWidth:  cfg.ClusterIssueWidth,
		loadPorts:   cfg.LoadPorts,
		storePorts:  cfg.StorePorts,
		sq:          uint64(cfg.StoreQueue),
		lq:          uint64(cfg.LoadQueue),
		lqOn:        cfg.LoadQueue > 0 && cfg.LoadQueue <= lqRingLen,
		l1dLat:      uint64(cfg.L1DLatency),
		l2Lat:       uint64(cfg.L2Latency),
		memLat:      uint64(cfg.MemLatency),
		mshrOn:      cfg.MSHRs > 0,
	}
	c.cc.memClassLat = [4]uint64{
		memL1:    uint64(cfg.L1DLatency),
		memL1TLB: uint64(cfg.L1DLatency) + 20, // page-walk cost
		memL2:    uint64(cfg.L2Latency),
	}
	c.applyMode()
	return c
}

// applyMode recomputes the mode-derived timing constants; called from the
// constructor and SetMode so the hot loop reads them as plain fields.
func (c *Core) applyMode() {
	w := c.cfg.fetchWidth(c.mode)
	c.mp.widths[0] = w
	c.mp.widths[1] = w
	if w > 4 {
		// µop-cache misses fall back to the legacy decode pipe, which
		// sustains at most 4 instructions per cycle.
		c.mp.widths[1] = 4
	}
	c.mp.rob = uint64(c.cfg.robSize(c.mode))
	c.mp.single = clusters(c.mode) == 1
}

// Mode returns the active cluster configuration.
func (c *Core) Mode() Mode { return c.mode }

// SetMemDerate scales the core's DRAM service gap by f (≤ 1 = nominal),
// the uarch-level injection point for DRAM-bandwidth degradation faults:
// unlike telemetry-class faults, a derate slows real execution, so IPC and
// every derived counter genuinely drop.
func (c *Core) SetMemDerate(f float64) { c.hier.SetMemDerate(f) }

// Cycles returns the core's retirement clock.
func (c *Core) Cycles() uint64 { return c.retireMax }

// Events returns a snapshot of cumulative event counts. StallCycles is
// derived at snapshot time as cycles minus busy cycles.
func (c *Core) Events() Events {
	ev := c.ev
	ev.Cycles = c.retireMax
	if ev.Cycles > ev.BusyCycles {
		ev.StallCycles = ev.Cycles - ev.BusyCycles
	}
	return ev
}

// SetMode performs the cluster-gating microcode flow (Section 3). Gating
// Cluster 2 copies live register state to Cluster 1, one µop per register,
// while execution continues; ungating is nearly free.
func (c *Core) SetMode(m Mode) {
	if m == c.mode {
		return
	}
	c.ev.ModeSwitches++
	cycles, uops := SwitchCost(c.cfg, m)
	c.ev.RegTransferUops += uint64(uops)
	c.ev.SwitchCycles += uint64(cycles)
	c.fc += uint64(cycles)
	c.mode = m
	c.applyMode()
}

// SwitchCost returns the cycle and register-transfer-µop cost SetMode
// charges for a transition into mode m. The surrogate's analytical layer
// uses it to patch mode-switch transients onto spliced steady-state
// recordings, so the microcode cost model lives in exactly one place.
func SwitchCost(cfg Config, m Mode) (cycles, regTransferUops int) {
	if m == ModeLowPower {
		uops := avgRegTransfers
		if uops > cfg.MaxRegTransfers {
			uops = cfg.MaxRegTransfers
		}
		return uops/cfg.ClusterIssueWidth + 4, uops
	}
	return 2, 0
}

// execChunk is the number of instructions processed per pass sweep. The
// scratch slices for one chunk (~14 B/instruction) plus the chunk's slice
// of the caller's batch stay resident in the L1/L2 caches across all three
// passes, so a large Execute batch never streams its scratch state through
// memory more than once. Chunking is pure batching — every pass still
// walks every instruction in program order — so counters are unaffected by
// the chunk size.
const execChunk = 2048

// Execute runs a batch of instructions through the timing model as
// struct-of-arrays passes over cache-sized chunks: decode and probe the
// chunk into contiguous parallel slices in one program-order walk, resolve
// its branches against the predictor, then price everything in one tight
// arithmetic pass over the slices. Cache and predictor state depend only
// on the instruction stream — never on timing — so the split is exact:
// counters are byte-identical to per-instruction interleaved execution at
// any batch size.
//
// The split also makes the passes independent across adjacent chunks: the
// probe pass for chunk k+1 touches only cache, predictor, and I-side state
// while the timing pass for chunk k touches only cycle rings and queue
// clocks, and the two write disjoint Events fields. Multi-chunk batches
// therefore run as a two-stage pipeline — chunk k+1 probes on a shared
// worker goroutine (pipeline.go) while chunk k is being priced here — with
// double-buffered scratch and per-chunk handoff through channels. Every
// pass still sees every instruction in program order, so counters remain
// byte-identical to the serial schedule.
func (c *Core) Execute(batch []trace.Instruction) {
	if len(batch) == 0 {
		return
	}
	before := c.retireMax
	total := len(batch)
	t0 := time.Now()
	c.scratch.grow(execChunk)

	if total > execChunk && probePoolReady() {
		c.executePipelined(batch)
	} else {
		for len(batch) > 0 {
			n := min(len(batch), execChunk)
			chunk := batch[:n]
			c.probePass(chunk, &c.scratch.buf[0])
			c.timingPass(chunk, &c.scratch.buf[0])
			batch = batch[n:]
		}
	}
	executeLatency.Observe(time.Since(t0))
	instrsSimulated.Add(int64(total))
	cyclesSimulated.Add(int64(c.retireMax - before))
}

// executePipelined overlaps chunk k+1's probe pass with chunk k's timing
// pass. At most one probe job per core is in flight, which serialises all
// cache and predictor mutations in program order; the received probeDone
// signal orders each buffer's writes before the timing pass reads them.
func (c *Core) executePipelined(batch []trace.Instruction) {
	k := 0
	probeJobs <- probeJob{c: c, batch: batch[:execChunk], buf: &c.scratch.buf[0]}
	for len(batch) > 0 {
		n := min(len(batch), execChunk)
		chunk := batch[:n]
		<-c.probeDone
		if rest := batch[n:]; len(rest) > 0 {
			m := min(len(rest), execChunk)
			probeJobs <- probeJob{c: c, batch: rest[:m], buf: &c.scratch.buf[(k+1)&1]}
		}
		c.timingPass(chunk, &c.scratch.buf[k&1])
		batch = batch[n:]
		k++
	}
}

// timingPass assigns fetch, ready, issue, and completion cycles to every
// instruction in the scratch slices. All machine state lives in local
// variables for the duration of the batch (written back at the end), all
// rings are indexed through power-of-two masks, and every config- or
// mode-derived quantity was hoisted at construction/SetMode time, so the
// loop body is branch-predictable integer arithmetic with no calls.
func (c *Core) timingPass(batch []trace.Instruction, s *probeBuf) {
	n := len(batch)
	words := s.word[:n]

	h := c.hier

	comp := &c.comp
	clRing := &c.cluster
	slots := &c.slots
	sqd := &c.sqDrain
	lqc := &c.lqComp

	// Config- and mode-derived constants, copied into true locals: the
	// ring writes below go through pointers into c, so the compiler would
	// otherwise reload any field read through c (or a pointer into it)
	// after every store. Plain locals are provably unaliased.
	cc := &c.cc
	mp := &c.mp
	opLUT := c.opLUT
	memClassLat := cc.memClassLat
	widths := mp.widths
	rob := mp.rob
	decodeDepth := cc.decodeDepth
	mispen := cc.mispen
	divLat := cc.divLat
	robCap := cc.robCap
	issueW := cc.issueWidth
	loadP := cc.loadPorts
	storeP := cc.storePorts
	sqDepth := cc.sq
	lqDepth := cc.lq
	lqOn := cc.lqOn
	l2Lat := cc.l2Lat
	memLat := cc.memLat

	// Machine state, batch-local.
	fc := c.fc
	fifc := c.fetchedInFC
	redirect := c.redirect
	retireMax := c.retireMax
	idx := c.idx
	steer := c.steer
	divFree := c.divFree
	sqCount := c.sqCount
	lqCount := c.lqCount
	memNextFree := h.memNextFree
	mshr := h.mshrNext
	gap := h.gap
	mshrGap := h.mshrGap

	// Event accumulators, flushed once after the loop. UopsReady needs no
	// counter: exactly one of {stalled-on-dep, ready} holds per
	// instruction, so it is n − stalledOnDep. Per-cluster issue counts use
	// a two-element array so the alternating steering pattern costs no
	// branch.
	var physRegRefs, stalledOnDep, readyWait uint64
	var issueC [2]uint64
	var busy, crossFwd uint64
	var sqStall, sqOcc, wrongPath, redirCycles uint64

	// notSingle masks cluster choice and steering-toggle updates to
	// cluster 0 in gated mode; icd is the cross-cluster forwarding cost
	// (applied via a 0/1 multiplier, never a branch).
	notSingle := uint8(1)
	if mp.single {
		notSingle = 0
	}
	icd := cc.icDelay
	var mshrOn uint64
	if cc.mshrOn {
		mshrOn = 1
	}

	for i := range batch {
		in := &batch[i]
		op := uint8(in.Op)
		ov := opLUT[op]
		fl := uint8(ov)
		w := words[i]
		info := uint8(w)

		// --- Fetch: I-side bubbles, width, redirects, ROB occupancy.
		// Every "advance the fetch cycle and restart the fetch group"
		// condition here is trace-random, so each one folds its reset into
		// a 0/−1 mask (g−1) instead of a branch; the checks still apply in
		// the original order because each mask lands before the next test.
		b := w >> 8
		fc += b
		var gz int
		if b != 0 {
			gz = 1
		}
		fifc &= gz - 1
		width := widths[info>>3&1]
		var gw int
		if fifc >= width {
			gw = 1
		}
		fc += uint64(gw)
		fifc &= gw - 1
		var gr int
		if redirect > fc {
			gr = 1
		}
		fc = max(fc, redirect)
		fifc &= gr - 1
		// Speculation window: instruction i cannot be fetched until i-ROB
		// completes.
		if idx >= rob {
			free := comp[(idx-rob)&(depWindow-1)]
			var gb int
			if free > fc {
				gb = 1
			}
			fc = max(fc, free)
			fifc &= gb - 1
		}
		fifc++
		dispatch := fc + decodeDepth

		// --- Steering: short dependency chains follow their producer,
		// independent work alternates clusters; gated mode uses cluster 0.
		// Whether a chain is followed depends on the trace, so the choice
		// is computed without a data-dependent branch: the producer's
		// cluster is read unconditionally (the masked ring index is always
		// in bounds; the value is simply unused when there is no
		// producer), the steering toggle flips only for unsteered work,
		// and single-cluster mode masks everything to cluster 0 via
		// notSingle without touching the toggle.
		d1 := in.Dep1
		dist1 := uint64(d1)
		var fbA, fbB uint8
		if uint32(d1)-1 < 3 { // d1 ∈ {1,2,3}, one unsigned compare
			fbA = 1
		}
		if dist1 <= idx {
			fbB = 1
		}
		fb := fbA & fbB
		pcl := clRing[(idx-dist1)&(depWindow-1)]
		steer ^= (fb ^ 1) & notSingle
		cl := steer ^ ((steer ^ pcl) & -fb)
		cl &= notSingle
		ci := cl & 1 // provably in-bounds index for the [2]-element state

		// --- Operand readiness: producer completion plus inter-cluster
		// forwarding delay. Both producer slots are resolved with
		// unconditional ring reads and masked arithmetic for the same
		// reason as steering: the presence, distance, and cluster of a
		// producer are trace-random, and mispredicted branches on them
		// would dominate the loop.
		// A producer's completion (and its cross-cluster forwarding cost)
		// counts only when the producer exists and is inside the window;
		// both conditions become 0/−1 masks over the unconditional ring
		// reads, so no trace-dependent branch survives.
		ready := dispatch
		j1 := (idx - dist1) & (depWindow - 1)
		x1 := uint64((clRing[j1] ^ cl) & notSingle)
		var gd1 uint64
		if d1 > 0 {
			gd1 = 1
		}
		m1 := -(gd1 & uint64(fbB))
		v1 := (comp[j1] + x1*icd) & m1
		d2 := in.Dep2
		dist2 := uint64(d2)
		j2 := (idx - dist2) & (depWindow - 1)
		x2 := uint64((clRing[j2] ^ cl) & notSingle)
		var gd2, gl2 uint64
		if d2 > 0 {
			gd2 = 1
		}
		if dist2 <= idx {
			gl2 = 1
		}
		m2 := -(gd2 & gl2)
		v2 := (comp[j2] + x2*icd) & m2
		crossFwd += x1&m1 + x2&m2
		physRegRefs += gd1 + gd2
		depReady := max(v1, v2)
		var sd uint64
		if depReady > ready {
			sd = 1
		}
		stalledOnDep += sd
		ready = max(ready, depReady)

		// --- Memory side: the probe pass already classified every access;
		// here only the DRAM channel, MSHR, and queue clocks apply. The
		// arithmetic mirrors Hierarchy.timeData over batch-local clocks.
		// --- Memory clocks, queue reservations, issue, and completion
		// rings, fused into one branch per instruction kind. The kind is
		// trace-random, so the loop pays exactly one hard-to-predict
		// branch for all kind-specific work, and each kind carries a
		// specialized copy of the issue loop: first cycle ≥ ready with a
		// free port on this cluster, probing only the port fields that
		// kind can exhaust. A slot whose epoch is stale belongs to a
		// long-dead cycle; treating it as the current cycle with zero
		// counts folds the fresh-claim and partially-used cases into one
		// path, so each probe is a load, a few flag-set compares, and a
		// single almost-always-taken exit branch.
		lat := uint64(ov >> 8)
		cls := info & infoClassMask
		shI := uint(ci) * 4
		var issue uint64
		if fl&flagLoad != 0 {
			// Cache-resident classes resolve through a latency LUT; only
			// the "reaches DRAM" condition branches, and it is strongly
			// biased one way per workload (rare when the footprint fits,
			// near-constant when it streams).
			if cls >= memPF {
				start := max(fc, memNextFree)
				memNextFree = start + gap
				if cls == memPF {
					lat = start - fc + l2Lat
				} else { // memDemand
					// MSHR throttling applies only to independent misses;
					// the condition is trace-random, so the clock update
					// runs unconditionally with a mask selecting between
					// the throttled and untouched values.
					var ind uint64
					if ready <= dispatch {
						ind = 1
					}
					ind &= mshrOn
					s := max(start, mshr[ci]&^(ind-1))
					nm := s + mshrGap
					if ind == 0 {
						nm = mshr[ci]
					}
					mshr[ci] = nm
					lat = s - fc + memLat
				}
			} else {
				lat = memClassLat[cls&3]
			}
			// Load-queue reservation: gated operation halves the
			// machine's aggregate load queue.
			nl := lqCount[ci]
			if lqOn && nl >= lqDepth {
				ready = max(ready, lqc[ci][(nl-lqDepth)&(lqRingLen-1)])
			}
			shL := slotLoadsShift + uint(ci)*3
			bump := uint64(1)<<shI | uint64(1)<<shL
			for t := ready; ; t++ {
				sl := &slots[t&(slotWindow-1)]
				v := *sl
				var fresh uint64
				if v>>slotEpochShift != t/slotWindow {
					fresh = 1
				}
				if fresh != 0 {
					v = t / slotWindow << slotEpochShift
				}
				var f1, f2 uint64
				if int(v>>shI&15) < issueW {
					f1 = 1
				}
				if int(v>>shL&7) < loadP {
					f2 = 1
				}
				if f1&f2 != 0 {
					*sl = v + bump
					busy += fresh
					issue = t
					break
				}
			}
			lqc[ci][nl&(lqRingLen-1)] = issue + lat
			lqCount[ci] = nl + 1
		} else if fl&flagStore != 0 {
			if cls >= memPF {
				// L2 miss: the writeback line still occupies the channel.
				memNextFree = max(fc, memNextFree) + gap
			}
			// Store-queue reservation and occupancy telemetry.
			ring := &sqd[ci]
			ncnt := sqCount[ci]
			if ncnt >= sqDepth {
				drain := ring[(ncnt-sqDepth)&(sqRingLen-1)]
				ex := max(drain, ready) - ready
				sqStall += ex
				ready += ex
			}
			occ := uint64(0)
			scan := min(sqDepth, ncnt)
			for k := uint64(1); k <= scan; k++ {
				var one uint64
				if ring[(ncnt-k)&(sqRingLen-1)] > ready {
					one = 1
				}
				occ += one
			}
			sqOcc += occ
			shS := slotStoresShift + uint(ci)*3
			bump := uint64(1)<<shI | uint64(1)<<shS
			for t := ready; ; t++ {
				sl := &slots[t&(slotWindow-1)]
				v := *sl
				var fresh uint64
				if v>>slotEpochShift != t/slotWindow {
					fresh = 1
				}
				if fresh != 0 {
					v = t / slotWindow << slotEpochShift
				}
				var f1, f3 uint64
				if int(v>>shI&15) < issueW {
					f1 = 1
				}
				if int(v>>shS&7) < storeP {
					f3 = 1
				}
				if f1&f3 != 0 {
					*sl = v + bump
					busy += fresh
					issue = t
					break
				}
			}
			ring[ncnt&(sqRingLen-1)] = issue + lat + sqDrainDelay
			sqCount[ci] = ncnt + 1
		} else {
			isDiv := fl&flagDiv != 0
			if isDiv {
				// Non-pipelined divider blocks the cluster's divide port.
				ready = max(ready, divFree[ci])
			}
			bump := uint64(1) << shI
			for t := ready; ; t++ {
				sl := &slots[t&(slotWindow-1)]
				v := *sl
				var fresh uint64
				if v>>slotEpochShift != t/slotWindow {
					fresh = 1
				}
				if fresh != 0 {
					v = t / slotWindow << slotEpochShift
				}
				if int(v>>shI&15) < issueW {
					*sl = v + bump
					busy += fresh
					issue = t
					break
				}
			}
			if isDiv {
				divFree[ci] = issue + divLat
			}
		}
		readyWait += issue - ready
		issueC[ci]++

		// --- Completion and retirement bookkeeping.
		complete := issue + lat
		j := idx & (depWindow - 1)
		comp[j] = complete
		clRing[j] = cl
		retireMax = max(retireMax, complete)

		// --- Branch resolution (direction precomputed by branchPass).
		if info&infoMispredict != 0 {
			r := complete + mispen
			if r > redirect {
				// Wrong-path fetch between now and resolution is flushed.
				flushed := min((complete-fc)*uint64(width), robCap)
				wrongPath += flushed
				redirCycles += r - fc
				redirect = r
			}
		}
		idx++
	}

	// Write back machine state and flush event accumulators.
	c.fc = fc
	c.fetchedInFC = fifc
	c.redirect = redirect
	c.retireMax = retireMax
	c.idx = idx
	c.steer = steer
	c.divFree = divFree
	c.sqCount = sqCount
	c.lqCount = lqCount
	h.memNextFree = memNextFree
	h.mshrNext = mshr

	c.ev.Instrs += uint64(n)
	c.ev.PhysRegRefs += physRegRefs
	c.ev.UopsStalledOnDep += stalledOnDep
	c.ev.UopsReady += uint64(n) - stalledOnDep
	c.ev.ReadyWaitCycles += readyWait
	c.ev.IssueC0 += issueC[0]
	c.ev.IssueC1 += issueC[1]
	c.ev.BusyCycles += busy
	c.ev.CrossForwards += crossFwd
	c.ev.SQStallCycles += sqStall
	c.ev.SQOccupancySum += sqOcc
	c.ev.WrongPathUops += wrongPath
	c.ev.RedirectCycles += redirCycles
}
