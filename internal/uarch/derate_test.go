package uarch

import (
	"testing"

	"clustergate/internal/trace"
)

func TestMemDerateStretchesDRAMGap(t *testing.T) {
	run := func(derate float64) int {
		cfg := DefaultConfig()
		h := NewHierarchy(&cfg)
		if derate > 0 {
			h.SetMemDerate(derate)
		}
		var ev Events
		var last int
		// Chained misses over DRAM-sized strides serialize on the channel
		// gap, which the derate stretches.
		for i := 0; i < 40; i++ {
			addr := uint64(0x5000_0000) + uint64(i)*1_048_576*64
			last = h.AccessData(addr, false, 0, 0, false, &ev)
		}
		return last
	}
	base := run(0)
	derated := run(4)
	if derated <= base {
		t.Errorf("derated 40th-miss latency %d not above baseline %d", derated, base)
	}
	cfg := DefaultConfig()
	if derated-base < 30*cfg.MemGap {
		t.Errorf("derate ×4 stretched latency by %d; want ≥ %d (3×gap per queued miss)",
			derated-base, 30*cfg.MemGap)
	}
}

func TestMemDerateResetRestoresThroughput(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(&cfg)
	h.SetMemDerate(8)
	h.SetMemDerate(1)
	var ev Events
	var last int
	for i := 0; i < 40; i++ {
		addr := uint64(0x5000_0000) + uint64(i)*1_048_576*64
		last = h.AccessData(addr, false, 0, 0, false, &ev)
	}
	if last > cfg.MemLatency+40*cfg.MemGap+100 {
		t.Errorf("latency %d after derate reset; multiplier should no longer apply", last)
	}
}

func TestCoreMemDerateLowersIPC(t *testing.T) {
	app := synthApp(memParams())
	run := func(derate float64) Events {
		core := NewCoreInMode(DefaultConfig(), ModeHighPerf)
		if derate > 1 {
			core.SetMemDerate(derate)
		}
		s := trace.NewStream(&trace.Trace{App: app, Seed: 7, NumInstrs: testInstrs})
		buf := make([]trace.Instruction, 4096)
		for {
			k := s.Read(buf)
			if k == 0 {
				break
			}
			core.Execute(buf[:k])
		}
		return core.Events()
	}
	base := run(1)
	derated := run(6)
	if derated.Instrs != base.Instrs {
		t.Fatalf("instruction counts diverged: %d vs %d", derated.Instrs, base.Instrs)
	}
	if derated.IPC() >= base.IPC() {
		t.Errorf("derated IPC %.3f not below baseline %.3f on memory-bound code",
			derated.IPC(), base.IPC())
	}
}
