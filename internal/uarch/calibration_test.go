package uarch

import (
	"fmt"
	"sort"
	"testing"

	"clustergate/internal/trace"
)

// TestPhaseCalibrationReport prints every SPEC profile phase's fixed-mode
// IPC ratio when run with -v; it asserts only that gate phases exceed the
// SLA ratio on average and perf phases fall below it, the invariant the
// whole corpus design rests on.
func TestPhaseCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep skipped in -short mode")
	}
	type row struct {
		bench, kind string
		idx         int
		hi, lo      float64
	}
	var rows []row
	for bench, phases := range trace.ProfilePhases() {
		for kind, list := range map[string][]trace.Phase{"gate": phases[0], "perf": phases[1]} {
			for i, ph := range list {
				app := synthApp(ph.Params)
				hi := runTrace(t, app, ModeHighPerf, 400_000)
				lo := runTrace(t, app, ModeLowPower, 400_000)
				rows = append(rows, row{bench, kind, i, hi.IPC(), lo.IPC()})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].bench != rows[j].bench {
			return rows[i].bench < rows[j].bench
		}
		if rows[i].kind != rows[j].kind {
			return rows[i].kind < rows[j].kind
		}
		return rows[i].idx < rows[j].idx
	})
	bad := 0
	for _, r := range rows {
		ratio := r.lo / r.hi
		flag := ""
		if (r.kind == "gate" && ratio < 0.9) || (r.kind == "perf" && ratio >= 0.9) {
			flag = "  <-- MISCALIBRATED"
			bad++
		}
		t.Logf("%-20s %-5s[%d] hi=%5.2f lo=%5.2f ratio=%.3f%s",
			r.bench, r.kind, r.idx, r.hi, r.lo, ratio, flag)
	}
	if frac := float64(bad) / float64(len(rows)); frac > 0.25 {
		t.Errorf("%d of %d profile phases (%.0f%%) miscalibrated against the 0.9 SLA",
			bad, len(rows), 100*frac)
	} else if bad > 0 {
		fmt.Printf("calibration: %d of %d phases borderline\n", bad, len(rows))
	}
}
