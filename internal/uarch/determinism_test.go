package uarch

import (
	"testing"
	"testing/quick"

	"clustergate/internal/trace"
)

// TestSimulationDeterministicProperty: simulating the same trace under the
// same configuration must produce identical event counts every time. The
// telemetry cache (internal/dataset) memoises simulations on disk keyed by
// corpus content, which is only sound if this holds exactly.
func TestSimulationDeterministicProperty(t *testing.T) {
	f := func(archRaw, seedRaw uint8, low bool) bool {
		arch := int(archRaw) % len(trace.Archetypes())
		app := trace.NewApplication(arch, "det", int64(seedRaw))
		mode := ModeHighPerf
		if low {
			mode = ModeLowPower
		}
		run := func() Events {
			core := NewCoreInMode(DefaultConfig(), mode)
			s := trace.NewStream(&trace.Trace{App: app, Seed: int64(seedRaw) + 7, NumInstrs: 30_000})
			buf := make([]trace.Instruction, 4096)
			for {
				k := s.Read(buf)
				if k == 0 {
					break
				}
				core.Execute(buf[:k])
			}
			return core.Events()
		}
		a, b := run(), run()
		if a != b {
			t.Logf("arch %d seed %d mode %v: events diverge\n%+v\n%+v", arch, seedRaw, mode, a, b)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestSimulationBatchSizeIndependence: the per-call batch size of
// Core.Execute is a caller convenience and must not leak into the
// architecture: feeding the same instructions in different chunkings must
// yield identical events.
func TestSimulationBatchSizeIndependence(t *testing.T) {
	app := trace.NewApplication(4, "batch", 5)
	run := func(chunk int) Events {
		core := NewCore(DefaultConfig())
		s := trace.NewStream(&trace.Trace{App: app, Seed: 9, NumInstrs: 40_000})
		buf := make([]trace.Instruction, chunk)
		for {
			k := s.Read(buf)
			if k == 0 {
				break
			}
			core.Execute(buf[:k])
		}
		return core.Events()
	}
	want := run(8192)
	for _, chunk := range []int{1, 7, 64, 1023, 40_000} {
		if got := run(chunk); got != want {
			t.Errorf("chunk %d diverges from chunk 8192:\n%+v\n%+v", chunk, got, want)
		}
	}
}
