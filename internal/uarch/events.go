package uarch

// Events accumulates the architectural and microarchitectural event counts
// the telemetry subsystem samples. All fields are cumulative; interval
// deltas are taken with Sub. The fields cover every signal required by the
// paper's Table 4 (the 12 PF-selected counters) and by the expert counter
// set of Eyerman et al. used by CHARSTAR.
type Events struct {
	Cycles uint64 // retirement-time cycle count
	Instrs uint64

	// Front end.
	UopCacheHits   uint64
	UopCacheMisses uint64
	L1IHits        uint64
	L1IMisses      uint64
	ITLBMisses     uint64
	FetchBubbles   uint64 // front-end stall cycles from I-side misses

	// Branches.
	Branches       uint64
	TakenBranches  uint64
	Mispredicts    uint64
	WrongPathUops  uint64 // speculative µops flushed on mispredicts
	RedirectCycles uint64

	// Data side.
	Loads             uint64
	Stores            uint64
	L1DReads          uint64
	L1DHits           uint64
	L1DMisses         uint64
	L2Hits            uint64
	L2Misses          uint64
	L2SilentEvictions uint64
	L2DirtyEvictions  uint64
	PrefetchFills     uint64 // L2 misses covered by the stream prefetcher
	DTLBMisses        uint64
	SQOccupancySum    uint64 // per-store snapshot of store-queue occupancy
	SQStallCycles     uint64

	// Execution.
	StallCycles      uint64 // cycles with no µop issued on any cluster
	BusyCycles       uint64
	UopsReady        uint64 // µops whose operands were ready at dispatch
	UopsStalledOnDep uint64 // µops that waited on a producer after dispatch
	ReadyWaitCycles  uint64 // total cycles ready µops waited for an issue slot
	PhysRegRefs      uint64 // source-register reads (physical register file references)
	IssueC0          uint64 // µops issued on cluster 0
	IssueC1          uint64 // µops issued on cluster 1
	CrossForwards    uint64 // values forwarded between clusters
	FPOps            uint64
	MulOps           uint64
	DivOps           uint64

	// Cluster gating (Section 3 microcode flow).
	ModeSwitches    uint64
	RegTransferUops uint64
	SwitchCycles    uint64
}

// Sub returns the per-field difference e - prev, for interval snapshots.
func (e Events) Sub(prev Events) Events {
	return Events{
		Cycles:            e.Cycles - prev.Cycles,
		Instrs:            e.Instrs - prev.Instrs,
		UopCacheHits:      e.UopCacheHits - prev.UopCacheHits,
		UopCacheMisses:    e.UopCacheMisses - prev.UopCacheMisses,
		L1IHits:           e.L1IHits - prev.L1IHits,
		L1IMisses:         e.L1IMisses - prev.L1IMisses,
		ITLBMisses:        e.ITLBMisses - prev.ITLBMisses,
		FetchBubbles:      e.FetchBubbles - prev.FetchBubbles,
		Branches:          e.Branches - prev.Branches,
		TakenBranches:     e.TakenBranches - prev.TakenBranches,
		Mispredicts:       e.Mispredicts - prev.Mispredicts,
		WrongPathUops:     e.WrongPathUops - prev.WrongPathUops,
		RedirectCycles:    e.RedirectCycles - prev.RedirectCycles,
		Loads:             e.Loads - prev.Loads,
		Stores:            e.Stores - prev.Stores,
		L1DReads:          e.L1DReads - prev.L1DReads,
		L1DHits:           e.L1DHits - prev.L1DHits,
		L1DMisses:         e.L1DMisses - prev.L1DMisses,
		L2Hits:            e.L2Hits - prev.L2Hits,
		L2Misses:          e.L2Misses - prev.L2Misses,
		L2SilentEvictions: e.L2SilentEvictions - prev.L2SilentEvictions,
		L2DirtyEvictions:  e.L2DirtyEvictions - prev.L2DirtyEvictions,
		PrefetchFills:     e.PrefetchFills - prev.PrefetchFills,
		DTLBMisses:        e.DTLBMisses - prev.DTLBMisses,
		SQOccupancySum:    e.SQOccupancySum - prev.SQOccupancySum,
		SQStallCycles:     e.SQStallCycles - prev.SQStallCycles,
		StallCycles:       e.StallCycles - prev.StallCycles,
		BusyCycles:        e.BusyCycles - prev.BusyCycles,
		UopsReady:         e.UopsReady - prev.UopsReady,
		UopsStalledOnDep:  e.UopsStalledOnDep - prev.UopsStalledOnDep,
		ReadyWaitCycles:   e.ReadyWaitCycles - prev.ReadyWaitCycles,
		PhysRegRefs:       e.PhysRegRefs - prev.PhysRegRefs,
		IssueC0:           e.IssueC0 - prev.IssueC0,
		IssueC1:           e.IssueC1 - prev.IssueC1,
		CrossForwards:     e.CrossForwards - prev.CrossForwards,
		FPOps:             e.FPOps - prev.FPOps,
		MulOps:            e.MulOps - prev.MulOps,
		DivOps:            e.DivOps - prev.DivOps,
		ModeSwitches:      e.ModeSwitches - prev.ModeSwitches,
		RegTransferUops:   e.RegTransferUops - prev.RegTransferUops,
		SwitchCycles:      e.SwitchCycles - prev.SwitchCycles,
	}
}

// IPC returns instructions per cycle over the recorded span; 0 when no
// cycles have elapsed.
func (e Events) IPC() float64 {
	if e.Cycles == 0 {
		return 0
	}
	return float64(e.Instrs) / float64(e.Cycles)
}
