package uarch

// Predictor is a tournament branch direction predictor: a PC-indexed
// bimodal table captures static biases, a gshare table (PC XOR global
// history) captures correlated patterns, and a PC-indexed chooser selects
// between them. This mirrors the Alpha 21264-style predictors of the
// SkyLake era closely enough for the "Branch Mispredictions" telemetry
// counter to track phase branch entropy faithfully.
type Predictor struct {
	history uint64
	bimodal []uint8
	gshare  []uint8
	chooser []uint8 // ≥2 selects gshare
}

const (
	historyBits = 12
	bimodalBits = 13
)

// NewPredictor returns a predictor with weakly-not-taken initial state.
func NewPredictor() *Predictor {
	p := &Predictor{
		bimodal: make([]uint8, 1<<bimodalBits),
		gshare:  make([]uint8, 1<<historyBits),
		chooser: make([]uint8, 1<<historyBits),
	}
	for i := range p.bimodal {
		p.bimodal[i] = 1
	}
	for i := range p.gshare {
		p.gshare[i] = 1
	}
	return p
}

// PredictAndUpdate predicts the direction for the branch at pc, updates all
// predictor state with the actual outcome, and reports whether the
// prediction was wrong.
func (p *Predictor) PredictAndUpdate(pc uint64, taken bool) (mispredicted bool) {
	bi := (pc >> 2) & uint64(len(p.bimodal)-1)
	gi := ((pc >> 2) ^ p.history) & uint64(len(p.gshare)-1)
	ci := (pc >> 2) & uint64(len(p.chooser)-1)

	bPred := p.bimodal[bi] >= 2
	gPred := p.gshare[gi] >= 2
	pred := bPred
	if p.chooser[ci] >= 2 {
		pred = gPred
	}

	// Train the component tables.
	updateCounter(&p.bimodal[bi], taken)
	updateCounter(&p.gshare[gi], taken)
	// Train the chooser only when the components disagree.
	if bPred != gPred {
		updateCounter(&p.chooser[ci], gPred == taken)
	}
	p.history = ((p.history << 1) | b2u(taken)) & ((1 << historyBits) - 1)
	return pred != taken
}

// updateCounter nudges a 2-bit saturating counter toward the outcome.
func updateCounter(c *uint8, up bool) {
	if up {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

// Reset restores initial predictor state.
func (p *Predictor) Reset() {
	p.history = 0
	for i := range p.bimodal {
		p.bimodal[i] = 1
	}
	for i := range p.gshare {
		p.gshare[i] = 1
	}
	for i := range p.chooser {
		p.chooser[i] = 0
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
