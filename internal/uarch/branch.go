package uarch

// Predictor is a tournament branch direction predictor: a PC-indexed
// bimodal table captures static biases, a gshare table (PC XOR global
// history) captures correlated patterns, and a PC-indexed chooser selects
// between them. This mirrors the Alpha 21264-style predictors of the
// SkyLake era closely enough for the "Branch Mispredictions" telemetry
// counter to track phase branch entropy faithfully.
type Predictor struct {
	history uint64
	bimodal []uint8
	gshare  []uint8
	chooser []uint8 // ≥2 selects gshare
}

const (
	historyBits = 12
	bimodalBits = 13
)

// NewPredictor returns a predictor with weakly-not-taken initial state.
func NewPredictor() *Predictor {
	p := &Predictor{
		bimodal: make([]uint8, 1<<bimodalBits),
		gshare:  make([]uint8, 1<<historyBits),
		chooser: make([]uint8, 1<<historyBits),
	}
	for i := range p.bimodal {
		p.bimodal[i] = 1
	}
	for i := range p.gshare {
		p.gshare[i] = 1
	}
	return p
}

// PredictAndUpdate predicts the direction for the branch at pc, updates all
// predictor state with the actual outcome, and reports whether the
// prediction was wrong. Branch outcomes are trace-random, so every
// outcome-dependent update below is a saturating-counter nudge computed
// with conditional moves rather than a (host-)unpredictable branch.
func (p *Predictor) PredictAndUpdate(pc uint64, taken bool) (mispredicted bool) {
	bi := (pc >> 2) & uint64(len(p.bimodal)-1)
	gi := ((pc >> 2) ^ p.history) & uint64(len(p.gshare)-1)
	ci := (pc >> 2) & uint64(len(p.chooser)-1)

	bPred := p.bimodal[bi] >= 2
	gPred := p.gshare[gi] >= 2
	pred := bPred
	if p.chooser[ci] >= 2 {
		pred = gPred
	}

	// Train the component tables; the chooser trains only when the
	// components disagree (a zero nudge otherwise).
	t := b2u(taken)
	p.bimodal[bi] = nudge(p.bimodal[bi], 2*int64(t)-1)
	p.gshare[gi] = nudge(p.gshare[gi], 2*int64(t)-1)
	disagree := int64(b2u(bPred != gPred))
	p.chooser[ci] = nudge(p.chooser[ci], disagree*(2*int64(b2u(gPred == taken))-1))
	p.history = ((p.history << 1) | t) & ((1 << historyBits) - 1)
	return pred != taken
}

// nudge moves a 2-bit saturating counter by step (−1, 0, or +1), clamping
// to [0, 3] with conditional moves.
func nudge(c uint8, step int64) uint8 {
	n := int64(c) + step
	n = max(n, 0)
	n = min(n, 3)
	return uint8(n)
}

// Reset restores initial predictor state.
func (p *Predictor) Reset() {
	p.history = 0
	for i := range p.bimodal {
		p.bimodal[i] = 1
	}
	for i := range p.gshare {
		p.gshare[i] = 1
	}
	for i := range p.chooser {
		p.chooser[i] = 0
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
