package uarch

import (
	"testing"

	"clustergate/internal/trace"
)

// synthApp builds a single-phase application for controlled IPC tests.
func synthApp(p trace.PhaseParams) *trace.Application {
	return &trace.Application{
		Name:       "synth",
		Phases:     []trace.Phase{{Params: p, Length: 1 << 30}},
		Transition: [][]float64{{1}},
		Seed:       1,
	}
}

func runTrace(t *testing.T, app *trace.Application, mode Mode, n int) Events {
	t.Helper()
	core := NewCoreInMode(DefaultConfig(), mode)
	s := trace.NewStream(&trace.Trace{App: app, Seed: 7, NumInstrs: n})
	buf := make([]trace.Instruction, 4096)
	for {
		k := s.Read(buf)
		if k == 0 {
			break
		}
		core.Execute(buf[:k])
	}
	return core.Events()
}

// serialParams: dependency chains of ~2, tiny footprint — both modes should
// achieve nearly identical IPC (gateable).
func serialParams() trace.PhaseParams {
	return trace.PhaseParams{
		DepDist: 1.5, LoadFrac: 0.1, StoreFrac: 0.04, BranchFrac: 0.1,
		DataFootprint: 16 << 10, CodeFootprint: 8 << 10,
		StrideFrac: 0.2, BranchEntropy: 0.05,
	}
}

// ilpParams: wide parallelism, tiny footprint — high-perf mode should be
// much faster (not gateable).
func ilpParams() trace.PhaseParams {
	return trace.PhaseParams{
		DepDist: 14, LoadFrac: 0.12, StoreFrac: 0.04, BranchFrac: 0.05,
		FPFrac:        0.3,
		DataFootprint: 16 << 10, CodeFootprint: 4 << 10,
		StrideFrac: 0.95, BranchEntropy: 0.02,
	}
}

// memParams: random accesses over a huge footprint — memory latency bound
// in both modes (gateable).
func memParams() trace.PhaseParams {
	return trace.PhaseParams{
		DepDist: 4, LoadFrac: 0.34, StoreFrac: 0.1, BranchFrac: 0.08,
		DataFootprint: 256 << 20, CodeFootprint: 16 << 10,
		StrideFrac: 0.1, BranchEntropy: 0.1,
	}
}

const testInstrs = 150_000

func TestIPCSerialCodeGateable(t *testing.T) {
	app := synthApp(serialParams())
	hi := runTrace(t, app, ModeHighPerf, testInstrs)
	lo := runTrace(t, app, ModeLowPower, testInstrs)
	ratio := lo.IPC() / hi.IPC()
	if ratio < 0.92 {
		t.Errorf("serial code IPC ratio = %.3f (hi=%.2f lo=%.2f); want ≥0.92",
			ratio, hi.IPC(), lo.IPC())
	}
	if hi.IPC() > 3.2 {
		t.Errorf("serial code hi IPC = %.2f, implausibly high for short dep chains", hi.IPC())
	}
}

func TestIPCHighILPNeedsBothClusters(t *testing.T) {
	app := synthApp(ilpParams())
	hi := runTrace(t, app, ModeHighPerf, testInstrs)
	lo := runTrace(t, app, ModeLowPower, testInstrs)
	ratio := lo.IPC() / hi.IPC()
	if ratio > 0.80 {
		t.Errorf("high-ILP IPC ratio = %.3f (hi=%.2f lo=%.2f); want ≤0.80",
			ratio, hi.IPC(), lo.IPC())
	}
	if hi.IPC() < 4.5 {
		t.Errorf("high-ILP hi IPC = %.2f, want >4.5 (8-wide machine)", hi.IPC())
	}
	if lo.IPC() > 4.0 {
		t.Errorf("low-power IPC = %.2f exceeds 4-wide limit", lo.IPC())
	}
}

func TestIPCMemoryBoundGateable(t *testing.T) {
	app := synthApp(memParams())
	hi := runTrace(t, app, ModeHighPerf, testInstrs)
	lo := runTrace(t, app, ModeLowPower, testInstrs)
	ratio := lo.IPC() / hi.IPC()
	if ratio < 0.90 {
		t.Errorf("memory-bound IPC ratio = %.3f (hi=%.2f lo=%.2f); want ≥0.90",
			ratio, hi.IPC(), lo.IPC())
	}
	if hi.IPC() > 2.5 {
		t.Errorf("memory-bound hi IPC = %.2f, implausibly high", hi.IPC())
	}
	if hi.L2Misses == 0 {
		t.Error("no L2 misses on a 256MB random footprint")
	}
}

func TestEventAccounting(t *testing.T) {
	app := synthApp(serialParams())
	ev := runTrace(t, app, ModeHighPerf, 50_000)
	if ev.Instrs != 50_000 {
		t.Errorf("Instrs = %d, want 50000", ev.Instrs)
	}
	if ev.Loads == 0 || ev.Stores == 0 || ev.Branches == 0 {
		t.Errorf("missing op events: %+v", ev)
	}
	if ev.L1DHits+ev.L1DMisses != ev.L1DReads+ev.Stores {
		t.Errorf("L1D accounting: hits+misses = %d, reads+stores = %d",
			ev.L1DHits+ev.L1DMisses, ev.L1DReads+ev.Stores)
	}
	if ev.UopsReady+ev.UopsStalledOnDep != ev.Instrs {
		t.Errorf("ready (%d) + stalled (%d) != instrs (%d)",
			ev.UopsReady, ev.UopsStalledOnDep, ev.Instrs)
	}
	if ev.IssueC0+ev.IssueC1 != ev.Instrs {
		t.Errorf("issued %d+%d != %d instrs", ev.IssueC0, ev.IssueC1, ev.Instrs)
	}
	if ev.StallCycles+ev.BusyCycles != ev.Cycles {
		t.Errorf("stall (%d) + busy (%d) != cycles (%d)",
			ev.StallCycles, ev.BusyCycles, ev.Cycles)
	}
}

func TestLowPowerUsesSingleCluster(t *testing.T) {
	app := synthApp(ilpParams())
	ev := runTrace(t, app, ModeLowPower, 20_000)
	if ev.IssueC1 != 0 {
		t.Errorf("low-power mode issued %d µops on cluster 2", ev.IssueC1)
	}
	if ev.CrossForwards != 0 {
		t.Errorf("low-power mode recorded %d cross-cluster forwards", ev.CrossForwards)
	}
}

func TestHighPerfUsesBothClusters(t *testing.T) {
	app := synthApp(ilpParams())
	ev := runTrace(t, app, ModeHighPerf, 20_000)
	if ev.IssueC0 == 0 || ev.IssueC1 == 0 {
		t.Errorf("cluster issue split %d/%d; steering broken", ev.IssueC0, ev.IssueC1)
	}
	balance := float64(ev.IssueC0) / float64(ev.IssueC0+ev.IssueC1)
	if balance < 0.25 || balance > 0.75 {
		t.Errorf("cluster balance = %.2f, severely skewed", balance)
	}
}

func TestModeSwitchCostsAndCounts(t *testing.T) {
	core := NewCore(DefaultConfig())
	app := synthApp(serialParams())
	s := trace.NewStream(&trace.Trace{App: app, Seed: 3, NumInstrs: 30_000})
	buf := make([]trace.Instruction, 10_000)

	s.Read(buf)
	core.Execute(buf)
	core.SetMode(ModeLowPower)
	ev := core.Events()
	if ev.ModeSwitches != 1 {
		t.Fatalf("ModeSwitches = %d, want 1", ev.ModeSwitches)
	}
	if ev.RegTransferUops == 0 || ev.RegTransferUops > 32 {
		t.Errorf("RegTransferUops = %d, want in (0,32]", ev.RegTransferUops)
	}
	gateCost := ev.SwitchCycles
	if gateCost == 0 {
		t.Error("gating reported zero cycle cost")
	}

	s.Read(buf)
	core.Execute(buf)
	core.SetMode(ModeHighPerf)
	ev = core.Events()
	ungateCost := ev.SwitchCycles - gateCost
	if ungateCost >= gateCost {
		t.Errorf("ungate cost %d ≥ gate cost %d; ungating should be nearly free",
			ungateCost, gateCost)
	}

	// Setting the same mode is a no-op.
	core.SetMode(ModeHighPerf)
	if core.Events().ModeSwitches != 2 {
		t.Error("redundant SetMode counted as a switch")
	}
}

func TestModeSwitchOverheadTiny(t *testing.T) {
	// Paper: worst-case overhead ~0.1% at 10k-instruction granularity.
	cfg := DefaultConfig()
	core := NewCore(cfg)
	app := synthApp(serialParams())
	s := trace.NewStream(&trace.Trace{App: app, Seed: 5, NumInstrs: 200_000})
	buf := make([]trace.Instruction, 10_000)
	for i := 0; ; i++ {
		k := s.Read(buf)
		if k == 0 {
			break
		}
		core.Execute(buf[:k])
		if i%2 == 0 {
			core.SetMode(ModeLowPower)
		} else {
			core.SetMode(ModeHighPerf)
		}
	}
	ev := core.Events()
	overhead := float64(ev.SwitchCycles) / float64(ev.Cycles)
	if overhead > 0.005 {
		t.Errorf("switch overhead = %.4f%% of cycles, want <0.5%%", overhead*100)
	}
}

func TestDeterministicExecution(t *testing.T) {
	app := synthApp(ilpParams())
	a := runTrace(t, app, ModeHighPerf, 30_000)
	b := runTrace(t, app, ModeHighPerf, 30_000)
	if a != b {
		t.Error("identical runs produced different event counts")
	}
}

func TestEventsSubAndIPC(t *testing.T) {
	a := Events{Cycles: 100, Instrs: 250, Loads: 10}
	b := Events{Cycles: 300, Instrs: 650, Loads: 25}
	d := b.Sub(a)
	if d.Cycles != 200 || d.Instrs != 400 || d.Loads != 15 {
		t.Errorf("Sub = %+v", d)
	}
	if ipc := d.IPC(); ipc != 2.0 {
		t.Errorf("IPC = %v, want 2.0", ipc)
	}
	if (Events{}).IPC() != 0 {
		t.Error("zero-cycle IPC should be 0")
	}
}

func TestBranchEntropyDrivesMispredicts(t *testing.T) {
	low := serialParams()
	low.BranchEntropy = 0.0
	high := serialParams()
	high.BranchEntropy = 0.9

	evLow := runTrace(t, synthApp(low), ModeHighPerf, 60_000)
	evHigh := runTrace(t, synthApp(high), ModeHighPerf, 60_000)
	rLow := float64(evLow.Mispredicts) / float64(evLow.Branches)
	rHigh := float64(evHigh.Mispredicts) / float64(evHigh.Branches)
	if rHigh < 3*rLow {
		t.Errorf("mispredict rates: entropy 0 → %.4f, entropy 0.9 → %.4f; predictor insensitive", rLow, rHigh)
	}
	if evHigh.WrongPathUops == 0 {
		t.Error("no wrong-path µops flushed despite heavy misprediction")
	}
}

func TestFootprintDrivesCacheMisses(t *testing.T) {
	small := memParams()
	small.DataFootprint = 8 << 10
	big := memParams()
	big.DataFootprint = 128 << 20

	evSmall := runTrace(t, synthApp(small), ModeHighPerf, 60_000)
	evBig := runTrace(t, synthApp(big), ModeHighPerf, 60_000)
	if evSmall.L1DMisses*10 > evSmall.L1DHits {
		t.Errorf("8KB footprint misses too much: %d misses / %d hits",
			evSmall.L1DMisses, evSmall.L1DHits)
	}
	if evBig.L2Misses < evSmall.L2Misses*10 {
		t.Errorf("footprint insensitivity: big L2 misses %d vs small %d",
			evBig.L2Misses, evSmall.L2Misses)
	}
}

func TestDeceptiveStreamingPhase(t *testing.T) {
	// roms_s-style phase: many data-cache misses AND high IPC sensitivity
	// — the signature that fools expert-counter models (Figure 9).
	p := trace.PhaseParams{
		DepDist: 40, LoadFrac: 0.30, StoreFrac: 0.08, BranchFrac: 0.03,
		FPFrac:        0.40,
		DataFootprint: 384 << 10, CodeFootprint: 4 << 10,
		StrideFrac: 0.98, BranchEntropy: 0.02,
	}
	// Run long enough to amortise compulsory-miss warmup, as the dataset
	// pipeline does with explicit cache warming.
	app := synthApp(p)
	hi := runTrace(t, app, ModeHighPerf, 600_000)
	lo := runTrace(t, app, ModeLowPower, 600_000)
	ratio := lo.IPC() / hi.IPC()
	if ratio > 0.80 {
		t.Errorf("deceptive phase ratio = %.3f; should NOT be gateable", ratio)
	}
	missRate := float64(hi.L1DMisses) / float64(hi.Loads)
	if missRate < 0.5 {
		t.Errorf("deceptive phase L1D miss rate = %.4f; should look memory-bound", missRate)
	}
}

func BenchmarkCoreHighPerf(b *testing.B) {
	app := synthApp(ilpParams())
	buf := make([]trace.Instruction, 100_000)
	trace.NewStream(&trace.Trace{App: app, Seed: 1, NumInstrs: len(buf)}).Read(buf)
	core := NewCore(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Execute(buf)
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkCoreMemoryBound(b *testing.B) {
	app := synthApp(memParams())
	buf := make([]trace.Instruction, 100_000)
	trace.NewStream(&trace.Trace{App: app, Seed: 1, NumInstrs: len(buf)}).Read(buf)
	core := NewCore(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Execute(buf)
	}
	b.SetBytes(int64(len(buf)))
}
