package uarch

import (
	"testing"

	"clustergate/internal/trace"
)

// TestGatingPreservesArchitecturalProgress: switching modes mid-trace must
// retire exactly the same instruction count as fixed-mode execution — the
// microcode flow moves register state, it never drops work.
func TestGatingPreservesArchitecturalProgress(t *testing.T) {
	app := synthApp(serialParams())
	const n = 120_000

	fixed := NewCore(DefaultConfig())
	s := trace.NewStream(&trace.Trace{App: app, Seed: 21, NumInstrs: n})
	buf := make([]trace.Instruction, 10_000)
	for {
		k := s.Read(buf)
		if k == 0 {
			break
		}
		fixed.Execute(buf[:k])
	}

	adaptive := NewCore(DefaultConfig())
	s = trace.NewStream(&trace.Trace{App: app, Seed: 21, NumInstrs: n})
	for i := 0; ; i++ {
		k := s.Read(buf)
		if k == 0 {
			break
		}
		adaptive.Execute(buf[:k])
		if i%3 == 0 {
			adaptive.SetMode(ModeLowPower)
		} else {
			adaptive.SetMode(ModeHighPerf)
		}
	}

	if fixed.Events().Instrs != adaptive.Events().Instrs {
		t.Fatalf("instruction counts diverge: fixed %d vs adaptive %d",
			fixed.Events().Instrs, adaptive.Events().Instrs)
	}
}

// TestAdaptiveCyclesBracketedByFixedModes: an adaptive run's cycle count
// lies between the all-high and all-low fixed runs (within switch
// overhead), since every interval executes in one of those two
// configurations.
func TestAdaptiveCyclesBracketedByFixedModes(t *testing.T) {
	app := trace.NewApplication(0, "bracket", 5) // mixed-ILP archetype
	const n = 200_000
	run := func(mode Mode, adaptive bool) uint64 {
		core := NewCoreInMode(DefaultConfig(), mode)
		s := trace.NewStream(&trace.Trace{App: app, Seed: 9, NumInstrs: n})
		buf := make([]trace.Instruction, 10_000)
		for i := 0; ; i++ {
			k := s.Read(buf)
			if k == 0 {
				break
			}
			core.Execute(buf[:k])
			if adaptive {
				if i%2 == 0 {
					core.SetMode(ModeLowPower)
				} else {
					core.SetMode(ModeHighPerf)
				}
			}
		}
		return core.Cycles()
	}

	hi := run(ModeHighPerf, false)
	lo := run(ModeLowPower, false)
	ad := run(ModeHighPerf, true)
	slack := uint64(float64(lo) * 0.05)
	if ad+slack < hi || ad > lo+slack {
		t.Errorf("adaptive cycles %d outside [high %d, low %d] bracket", ad, hi, lo)
	}
}
