// Package uarch models the paper's CPU: a scaled Intel SkyLake derivative
// with two 4-wide out-of-order execution clusters (Figure 2). It provides a
// cycle-level timing model over synthetic instruction traces, a cache/TLB
// hierarchy, a branch predictor, and the cluster-gating microcode flow,
// and exposes the event counts the telemetry subsystem samples.
//
// The model is a windowed dataflow scheduler: every instruction is assigned
// a fetch cycle (front-end width, I-side misses, redirects, ROB occupancy),
// a ready cycle (producer completion plus inter-cluster forwarding delay),
// an issue cycle (first cycle with a free slot on its cluster's ports), and
// a completion cycle (issue plus operation latency, with load latency taken
// from the simulated cache hierarchy). This reproduces the IPC sensitivity
// that matters for predictive cluster gating: dependency-bound and
// memory-latency-bound phases lose nothing at half width, while high-ILP
// phases need both clusters.
package uarch

// Mode selects the cluster configuration (Section 3).
type Mode uint8

const (
	// ModeHighPerf steers instructions to both clusters: 8-wide issue.
	ModeHighPerf Mode = iota
	// ModeLowPower gates Cluster 2 and runs 4-wide on Cluster 1, consuming
	// 35% less power.
	ModeLowPower
)

// String names the mode as in the paper.
func (m Mode) String() string {
	if m == ModeLowPower {
		return "low-power"
	}
	return "high-perf"
}

// Config holds the microarchitectural parameters of the scaled SkyLake
// core. The zero value is not valid; use DefaultConfig.
type Config struct {
	// FetchWidth is instructions fetched/renamed per cycle in
	// high-performance mode; low-power mode halves it.
	FetchWidth int
	// DecodeDepth is the front-end pipeline depth in cycles between fetch
	// and earliest issue.
	DecodeDepth int
	// ClusterIssueWidth is the per-cluster scheduler width.
	ClusterIssueWidth int
	// ROBSize bounds instructions in flight in high-performance mode.
	// ROBSize bounds instructions in flight; it is shared across clusters
	// and does not shrink when gating.
	ROBSize int
	// StoreQueue is the per-cluster store-queue depth.
	StoreQueue int
	// LoadPorts and StorePorts are per-cluster MEU ports.
	LoadPorts, StorePorts int
	// LoadQueue is the per-cluster limit on loads in flight.
	LoadQueue int
	// MSHRs is the per-cluster limit on outstanding demand misses to DRAM.
	// Prefetched lines bypass it; gating halves the aggregate, which makes
	// moderate-parallelism random-access latency-bound phases non-gateable
	// at low IPC — one of the behaviours that defeats naive "low IPC ⇒
	// gateable" heuristics.
	MSHRs int
	// InterClusterDelay is the extra forwarding latency, in cycles, when a
	// consumer issues on a different cluster than its producer.
	InterClusterDelay int
	// MispredictPenalty is the front-end redirect cost after a resolved
	// branch misprediction.
	MispredictPenalty int

	// Latencies in cycles.
	L1DLatency, L2Latency, MemLatency int
	DivLatency                        int
	// MemGap is the minimum spacing, in cycles, between DRAM line fills:
	// the off-chip bandwidth limit shared by both clusters and modes.
	MemGap int
	// DisablePrefetch turns off the stream prefetcher (ablation).
	DisablePrefetch bool

	// Cache geometry.
	L1D, L1I, L2 CacheConfig
	UopCache     CacheConfig
	ITLB, DTLB   CacheConfig

	// Mode-switch microcode (Section 3): entering low-power mode copies up
	// to MaxRegTransfers live registers from Cluster 2, one µop each.
	MaxRegTransfers int
}

// DefaultConfig returns the scaled-SkyLake parameters used throughout the
// paper's evaluation.
func DefaultConfig() Config {
	return Config{
		FetchWidth:        8,
		DecodeDepth:       6,
		ClusterIssueWidth: 4,
		ROBSize:           224,
		StoreQueue:        28,
		LoadPorts:         2,
		LoadQueue:         36,
		MSHRs:             12,
		StorePorts:        1,
		InterClusterDelay: 2,
		MispredictPenalty: 14,
		L1DLatency:        4,
		L2Latency:         14,
		MemLatency:        80,
		MemGap:            3,
		DivLatency:        18,
		L1D:               CacheConfig{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		L1I:               CacheConfig{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		L2:                CacheConfig{SizeBytes: 512 << 10, Ways: 8, LineBytes: 64},
		UopCache:          CacheConfig{SizeBytes: 6 << 10, Ways: 8, LineBytes: 64},
		ITLB:              CacheConfig{SizeBytes: 128 * 4096, Ways: 4, LineBytes: 4096},
		DTLB:              CacheConfig{SizeBytes: 64 * 4096, Ways: 4, LineBytes: 4096},
		MaxRegTransfers:   32,
	}
}

// fetchWidth returns the front-end width for the mode.
func (c *Config) fetchWidth(m Mode) int {
	if m == ModeLowPower {
		w := c.FetchWidth / 2
		if w < 1 {
			w = 1
		}
		return w
	}
	return c.FetchWidth
}

// robSize returns the in-flight window for the mode; the reorder buffer is
// a shared front-end resource and does not shrink when gating (the
// per-cluster load queues do — see Config.LoadQueue).
func (c *Config) robSize(m Mode) int {
	return c.ROBSize
}

// clusters returns the number of active clusters for the mode.
func clusters(m Mode) int {
	if m == ModeLowPower {
		return 1
	}
	return 2
}
