package uarch

import (
	"runtime"
	"sync"

	"clustergate/internal/trace"
)

// The probe pool decouples the two halves of Execute's struct-of-arrays
// split across goroutines: while a core's timing pass prices chunk k on
// the caller's goroutine, the pool runs the probe pass for chunk k+1.
//
// Why this is exact: the probe pass mutates only cache, predictor, and
// I-side state, the timing pass only cycle rings and queue clocks, and
// the two flush disjoint Events fields — so overlapping them reorders no
// observable computation. Program order within each kind of state is
// preserved because a core never has more than one probe job in flight
// (Execute receives probeDone for chunk k before submitting k+1).
//
// Why a shared pool rather than a goroutine per Execute call: spawning a
// goroutine allocates, and steady-state Execute is pinned to zero
// allocations per op. The pool is created once, lazily, and jobs for
// different cores are independent, so the same few workers serve every
// core in the process (including concurrent cores under the parallel
// sweep runner).

// probeJob asks the pool to run c.probePass(batch, buf) and then signal
// c.probeDone. The channel send publishes every buf write to the receiving
// goroutine.
type probeJob struct {
	c     *Core
	batch []trace.Instruction
	buf   *probeBuf
}

var (
	probePoolOnce sync.Once
	probeJobs     chan probeJob
)

// probePoolReady reports whether pipelined execution is worthwhile and,
// on first use, starts the worker pool. On a single-CPU process the
// pipeline can only interleave, not overlap, so Execute keeps the serial
// schedule there.
func probePoolReady() bool {
	if runtime.GOMAXPROCS(0) < 2 {
		return false
	}
	probePoolOnce.Do(startProbePool)
	return true
}

func startProbePool() {
	workers := min(runtime.GOMAXPROCS(0)-1, 4)
	probeJobs = make(chan probeJob, 4*workers)
	for i := 0; i < workers; i++ {
		go func() {
			for j := range probeJobs {
				j.c.probePass(j.batch, j.buf)
				j.c.probeDone <- struct{}{}
			}
		}()
	}
}
