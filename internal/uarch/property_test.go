package uarch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"clustergate/internal/trace"
)

func TestCacheHitAfterAccessProperty(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 8 << 10, Ways: 4, LineBytes: 64})
	f := func(addr uint64) bool {
		c.Access(addr, false)
		hit, _ := c.Access(addr, false)
		return hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCacheNeverExceedsCapacityProperty(t *testing.T) {
	cfg := CacheConfig{SizeBytes: 4 << 10, Ways: 4, LineBytes: 64}
	c := NewCache(cfg)
	rng := rand.New(rand.NewSource(2))
	// After arbitrary access patterns, the number of resident lines can
	// never exceed sets×ways; probe by counting hits over a snapshot scan.
	for i := 0; i < 10_000; i++ {
		c.Access(uint64(rng.Intn(1<<20))&^63, rng.Intn(2) == 0)
	}
	resident := 0
	for line := uint64(0); line < 1<<20/64; line++ {
		// Peeking via Access would mutate; use set/tag inspection instead.
		base := int(line&c.setMask) * c.ways
		tagV := line>>c.tagShift | tagValid
		for i := 0; i < c.ways; i++ {
			if c.tags[base+i]&^tagDirty == tagV {
				resident++
			}
		}
	}
	if max := cfg.Sets() * cfg.Ways; resident > max {
		t.Errorf("resident lines = %d exceed capacity %d", resident, max)
	}
}

func TestPredictorOutputAlwaysBoolean(t *testing.T) {
	p := NewPredictor()
	f := func(pc uint64, taken bool) bool {
		// PredictAndUpdate must never panic and must keep counters in
		// 2-bit range.
		p.PredictAndUpdate(pc, taken)
		for _, c := range p.bimodal {
			if c > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEventsSubRoundTripProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		base := Events{Cycles: uint64(a), Instrs: uint64(a) * 2, Loads: uint64(a) / 3}
		later := Events{
			Cycles: base.Cycles + uint64(b),
			Instrs: base.Instrs + uint64(b)*2,
			Loads:  base.Loads + uint64(b)/3,
		}
		d := later.Sub(base)
		return d.Cycles == uint64(b) && d.Instrs == uint64(b)*2 && d.Loads == uint64(b)/3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIPCNeverExceedsWidth(t *testing.T) {
	// Whatever the phase parameters, IPC can never exceed the fetch width
	// of the mode — the structural invariant of the pipeline model.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 6; trial++ {
		p := randomPhase(rng)
		app := synthApp(p)
		hi := runTrace(t, app, ModeHighPerf, 60_000)
		lo := runTrace(t, app, ModeLowPower, 60_000)
		if hi.IPC() > 8.0 {
			t.Errorf("trial %d: high-perf IPC %.2f exceeds 8-wide limit (params %+v)", trial, hi.IPC(), p)
		}
		if lo.IPC() > 4.0 {
			t.Errorf("trial %d: low-power IPC %.2f exceeds 4-wide limit", trial, lo.IPC())
		}
	}
}

func randomPhase(rng *rand.Rand) (p trace.PhaseParams) {
	p.DepDist = 1.5 + rng.Float64()*30
	p.LoadFrac = rng.Float64() * 0.35
	p.StoreFrac = rng.Float64() * 0.12
	p.BranchFrac = rng.Float64() * 0.2
	p.FPFrac = rng.Float64() * 0.4
	p.DataFootprint = 4096 << uint(rng.Intn(16))
	p.CodeFootprint = 4096 << uint(rng.Intn(8))
	p.StrideFrac = rng.Float64()
	p.BranchEntropy = rng.Float64() * 0.5
	return p
}
